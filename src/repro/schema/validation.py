"""Structural validation of schema trees and repositories.

These checks are invariants that the rest of the system silently relies on
(contiguous node ids, acyclic parent pointers, consistent depths, registered
tree ids).  They are cheap enough to run in tests and in property-based checks
over generated workloads.
"""

from __future__ import annotations

from typing import List

from repro.errors import SchemaError
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree


def validate_tree(tree: SchemaTree) -> None:
    """Raise :class:`SchemaError` if the tree violates any structural invariant."""
    if tree.node_count == 0:
        raise SchemaError(f"tree {tree.name!r} is empty")

    root_id = tree.root_id
    if tree.parent_id(root_id) is not None:
        raise SchemaError(f"root {root_id} of tree {tree.name!r} has a parent")

    seen_roots = [node_id for node_id in tree.node_ids() if tree.parent_id(node_id) is None]
    if seen_roots != [root_id]:
        raise SchemaError(f"tree {tree.name!r} has {len(seen_roots)} parentless nodes, expected exactly 1")

    for node_id in tree.node_ids():
        node = tree.node(node_id)
        if node.node_id != node_id:
            raise SchemaError(
                f"node at position {node_id} of tree {tree.name!r} carries node_id {node.node_id}"
            )
        parent = tree.parent_id(node_id)
        if parent is not None:
            if parent >= node_id:
                raise SchemaError(
                    f"node {node_id} of tree {tree.name!r} has parent {parent} that does not precede it"
                )
            if node_id not in tree.children_ids(parent):
                raise SchemaError(
                    f"node {node_id} of tree {tree.name!r} is missing from its parent's child list"
                )
            if tree.depth(node_id) != tree.depth(parent) + 1:
                raise SchemaError(
                    f"node {node_id} of tree {tree.name!r} has inconsistent depth"
                )
        for child_id in tree.children_ids(node_id):
            if tree.parent_id(child_id) != node_id:
                raise SchemaError(
                    f"child {child_id} of node {node_id} in tree {tree.name!r} has a different parent"
                )

    reachable = list(tree.preorder())
    if len(reachable) != tree.node_count or len(set(reachable)) != tree.node_count:
        raise SchemaError(
            f"tree {tree.name!r}: {len(set(reachable))} nodes reachable from the root, "
            f"expected {tree.node_count}"
        )


def validate_repository(repository: SchemaRepository) -> None:
    """Raise :class:`SchemaError` if the repository or any of its trees is invalid."""
    if repository.tree_count == 0:
        raise SchemaError(f"repository {repository.name!r} contains no trees")

    expected_offset = 0
    for expected_tree_id, tree in enumerate(repository.trees()):
        if tree.tree_id != expected_tree_id:
            raise SchemaError(
                f"tree {tree.name!r} carries tree_id {tree.tree_id}, expected {expected_tree_id}"
            )
        if repository.tree_offset(tree.tree_id) != expected_offset:
            raise SchemaError(
                f"tree {tree.name!r} has offset {repository.tree_offset(tree.tree_id)}, expected {expected_offset}"
            )
        validate_tree(tree)
        expected_offset += tree.node_count

    if expected_offset != repository.node_count:
        raise SchemaError(
            f"repository {repository.name!r} reports {repository.node_count} nodes, trees sum to {expected_offset}"
        )

    # Round-trip a sample of global ids through locate() to check addressing.
    sample: List[int] = [0, repository.node_count - 1]
    step = max(1, repository.node_count // 997)
    sample.extend(range(0, repository.node_count, step))
    for global_id in sample:
        ref = repository.locate(global_id)
        if repository.global_id(ref.tree_id, ref.node_id) != global_id:
            raise SchemaError(f"global id {global_id} does not round-trip through locate()")

"""Bellflower's objective function (Eqs. 1-3 of the paper).

``Δsim`` (Eq. 1) averages the element-level name similarities of the mapping.
``Δpath`` (Eq. 2) penalizes mappings whose subtree ``t`` uses more edges than
the personal schema: ``Δpath = 1 - (|Et| - |Es|) / (|Es| * K)`` with a
normalization constant ``K`` derived from "other constraints in the system
(e.g. the maximum length of a path)".  ``Δ`` (Eq. 3) is the weighted sum
``α·Δsim + (1-α)·Δpath``.

Both hints are clamped into ``[0, 1]``: a mapping subtree can in principle use
*fewer* edges than ``|Es|`` when personal-schema edges map to overlapping
paths, which would push Eq. 2 above 1, and extremely stretched mappings would
push it below 0.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ObjectiveError
from repro.matchers.selection import MappingElement
from repro.objective.base import MappingEvaluation, ObjectiveFunction
from repro.schema.tree import SchemaTree


def _clamp_unit(value: float) -> float:
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value


class BellflowerObjective(ObjectiveFunction):
    """``Δ(s, t) = α·Δsim(s, t) + (1 - α)·Δpath(s, t)``.

    Parameters
    ----------
    alpha:
        Relative importance of the name-similarity hint.  The paper's Figure 6
        experiment varies this over 0.25 / 0.50 / 0.75.
    path_normalization:
        The constant ``K`` of Eq. 2.  It should be at least the longest
        personal-schema-edge-to-path stretch the system considers meaningful;
        larger values make the path hint more forgiving.
    """

    name = "bellflower"

    def __init__(self, alpha: float = 0.5, path_normalization: float = 4.0) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ObjectiveError(f"alpha must be in [0, 1], got {alpha}")
        if path_normalization <= 0:
            raise ObjectiveError(f"path normalization constant K must be positive, got {path_normalization}")
        self.alpha = alpha
        self.path_normalization = path_normalization

    # -- hints ---------------------------------------------------------------

    def name_similarity(self, personal_schema: SchemaTree, assignment: Mapping[int, MappingElement]) -> float:
        """Eq. 1: the mean element similarity over all personal nodes."""
        node_count = personal_schema.node_count
        if node_count == 0:
            raise ObjectiveError("cannot evaluate a mapping for an empty personal schema")
        total = sum(element.similarity for element in assignment.values())
        return total / node_count

    def path_similarity(self, personal_schema: SchemaTree, target_edge_count: int) -> float:
        """Eq. 2: penalize mapping subtrees that stretch the personal schema's edges."""
        personal_edges = personal_schema.edge_count
        if personal_edges == 0:
            # A single-node personal schema has no paths to preserve; the path
            # hint is trivially satisfied.
            return 1.0
        stretched = (target_edge_count - personal_edges) / (personal_edges * self.path_normalization)
        return _clamp_unit(1.0 - stretched)

    # -- ObjectiveFunction interface ------------------------------------------

    def evaluate(
        self,
        personal_schema: SchemaTree,
        assignment: Mapping[int, MappingElement],
        target_edge_count: int,
    ) -> MappingEvaluation:
        if len(assignment) != personal_schema.node_count:
            raise ObjectiveError(
                f"complete mapping expected ({personal_schema.node_count} nodes), "
                f"got an assignment of {len(assignment)} nodes"
            )
        sim = self.name_similarity(personal_schema, assignment)
        path = self.path_similarity(personal_schema, target_edge_count)
        score = self.alpha * sim + (1.0 - self.alpha) * path
        return MappingEvaluation(
            score=score,
            components={"sim": sim, "path": path},
            target_edge_count=target_edge_count,
        )

    def bound(
        self,
        personal_schema: SchemaTree,
        assignment: Mapping[int, MappingElement],
        best_remaining_similarity: Mapping[int, float],
        partial_target_edge_count: int,
    ) -> float:
        """Admissible upper bound for any completion of a partial assignment.

        * The Δsim part assumes every unassigned node will reach the best
          similarity still available among its candidates.
        * The Δpath part uses the edges already forced by the assigned nodes:
          the final ``|Et|`` can only grow, and Δpath is non-increasing in
          ``|Et|``, so evaluating Eq. 2 at the partial edge count bounds it from
          above.
        """
        node_count = personal_schema.node_count
        assigned_similarity = sum(element.similarity for element in assignment.values())
        optimistic_similarity = assigned_similarity + sum(best_remaining_similarity.values())
        sim_bound = optimistic_similarity / node_count if node_count else 0.0
        path_bound = self.path_similarity(personal_schema, partial_target_edge_count)
        return self.alpha * _clamp_unit(sim_bound) + (1.0 - self.alpha) * path_bound

    def fast_bound(
        self,
        personal_schema: SchemaTree,
        assigned_similarity: float,
        remaining_similarity: float,
        partial_target_edge_count: int,
    ) -> float:
        """O(1) :meth:`bound`: Eq. 1/2 only need the two similarity totals.

        Bit-identical to :meth:`bound` — the engine accumulates
        ``assigned_similarity`` and ``remaining_similarity`` with the same
        left-to-right addition order the generic path's ``sum`` calls use.
        """
        node_count = personal_schema.node_count
        optimistic_similarity = assigned_similarity + remaining_similarity
        sim_bound = optimistic_similarity / node_count if node_count else 0.0
        path_bound = self.path_similarity(personal_schema, partial_target_edge_count)
        return self.alpha * _clamp_unit(sim_bound) + (1.0 - self.alpha) * path_bound

    def bound_table(self, personal_schema: SchemaTree):
        """Packed per-edge-count table of :meth:`fast_bound`'s path term.

        Declines (``None``) for subclasses that override the baked-in pieces;
        see :func:`repro.kernels.objective.bellflower_bound_table`.
        """
        from repro.kernels.objective import bellflower_bound_table

        return bellflower_bound_table(self, personal_schema)


class NameOnlyObjective(BellflowerObjective):
    """Δ = Δsim: the degenerate α = 1 case, used in ablations and tests."""

    name = "name-only"

    def __init__(self) -> None:
        super().__init__(alpha=1.0, path_normalization=1.0)


class PathOnlyObjective(BellflowerObjective):
    """Δ = Δpath: the degenerate α = 0 case, used in ablations and tests."""

    name = "path-only"

    def __init__(self, path_normalization: float = 4.0) -> None:
        super().__init__(alpha=0.0, path_normalization=path_normalization)

"""Objective functions for schema mappings.

The objective function ``Δ(s, t) -> [0, 1]`` approximates the semantic
correctness of a schema mapping.  Bellflower combines a name-similarity hint
(Eq. 1) with a path-length hint (Eq. 2) through a weighted sum controlled by
``α`` (Eq. 3).  The package also provides the admissible *bounding function*
that the Branch-and-Bound mapping generator uses to prune partial mappings
early.
"""

from repro.objective.base import MappingEvaluation, ObjectiveFunction
from repro.objective.bellflower import BellflowerObjective, NameOnlyObjective, PathOnlyObjective

__all__ = [
    "BellflowerObjective",
    "MappingEvaluation",
    "NameOnlyObjective",
    "ObjectiveFunction",
    "PathOnlyObjective",
]

"""The objective-function interface.

An objective function evaluates complete schema mappings and — crucially for
Branch-and-Bound — provides an *optimistic bound* for partial mappings: an
upper bound on the similarity index any completion of the partial mapping can
reach.  A bound that is not admissible (i.e. that can underestimate) would make
B&B silently drop valid mappings, so the property-based tests check admissibility
explicitly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.matchers.selection import MappingElement
from repro.schema.tree import SchemaTree


@dataclass(frozen=True)
class MappingEvaluation:
    """The result of evaluating a (complete) schema mapping.

    Attributes
    ----------
    score:
        The combined similarity index ``Δ(s, t)``.
    components:
        Per-hint scores (e.g. ``{"sim": 0.92, "path": 0.85}``) for reports.
    target_edge_count:
        ``|Et|`` — the number of edges of the mapping subtree ``t``.
    """

    score: float
    components: Dict[str, float]
    target_edge_count: int


class ObjectiveFunction(abc.ABC):
    """Evaluates schema mappings and bounds partial ones."""

    #: Name used in experiment reports.
    name: str = "objective"

    @abc.abstractmethod
    def evaluate(
        self,
        personal_schema: SchemaTree,
        assignment: Mapping[int, MappingElement],
        target_edge_count: int,
    ) -> MappingEvaluation:
        """Score a complete mapping.

        Parameters
        ----------
        personal_schema:
            The personal schema ``s``.
        assignment:
            One mapping element per personal node id (a complete assignment).
        target_edge_count:
            ``|Et|`` of the induced mapping subtree, computed by the caller via
            the distance oracle (the objective function itself stays oblivious
            to how paths were obtained).
        """

    def fast_bound(
        self,
        personal_schema: SchemaTree,
        assigned_similarity: float,
        remaining_similarity: float,
        partial_target_edge_count: int,
    ) -> Optional[float]:
        """O(1) variant of :meth:`bound` from precomputed similarity aggregates.

        The unified search engine maintains the partial assignment's similarity
        sum incrementally and precomputes, per assignment level, the total of
        the best remaining per-node similarities.  Objectives whose bound only
        depends on those two aggregates (and the partial edge count) can
        implement this method and skip the per-expansion dictionary walk of
        :meth:`bound` entirely; it must return exactly the value :meth:`bound`
        would compute for the same state.  The default returns ``None``,
        meaning "unsupported" — the engine then falls back to :meth:`bound`.
        """
        return None

    def bound_table(self, personal_schema: SchemaTree):
        """Packed per-search evaluation table, or ``None`` when unsupported.

        Objectives whose :meth:`fast_bound` depends on the integer partial
        edge count only through a precomputable per-edge-count term can return
        a table object with a ``bound(optimistic_similarity,
        partial_target_edge_count)`` method (see
        :class:`repro.kernels.objective.PackedBoundTable`).  The engine builds
        one table per search context and calls it in place of
        :meth:`fast_bound`; the table must return exactly the value
        :meth:`fast_bound` (and therefore :meth:`bound`) would compute.
        """
        return None

    @abc.abstractmethod
    def bound(
        self,
        personal_schema: SchemaTree,
        assignment: Mapping[int, MappingElement],
        best_remaining_similarity: Mapping[int, float],
        partial_target_edge_count: int,
    ) -> float:
        """Optimistic upper bound on the score of any completion of ``assignment``.

        Parameters
        ----------
        assignment:
            The partial assignment built so far.
        best_remaining_similarity:
            For every still-unassigned personal node, the maximum element
            similarity available among its remaining candidates.
        partial_target_edge_count:
            ``|Et|`` of the union of paths between already-assigned nodes.  The
            final ``|Et|`` can only be larger or equal, which is what makes a
            bound based on it admissible.
        """

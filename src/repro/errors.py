"""Exception hierarchy for the repro (Bellflower) library.

All library errors derive from :class:`ReproError` so callers can catch a single
base class.  Each subsystem raises the most specific subclass available; error
messages always name the offending entity (node id, schema name, parameter) so
that failures in large repositories remain diagnosable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Raised for malformed or inconsistent schema graphs."""


class SchemaParseError(SchemaError):
    """Raised when an XSD or DTD document cannot be parsed into a schema tree."""


class UnknownNodeError(SchemaError):
    """Raised when a node id is not present in a graph or repository."""

    def __init__(self, node_id: int, context: str = "schema graph") -> None:
        super().__init__(f"node id {node_id!r} is not part of the {context}")
        self.node_id = node_id


class UnknownTreeError(SchemaError):
    """Raised when a tree id is not present in a repository.

    A dedicated subclass (rather than a bare :class:`SchemaError`) so service
    front-ends — the CLI, the serve loop, the shard fan-out — can map "the
    client named a tree that does not exist" to a clean request-level error
    instead of treating it like an internal schema inconsistency.
    """

    def __init__(self, tree_id: int, context: str = "repository") -> None:
        super().__init__(f"tree id {tree_id!r} is not part of the {context}")
        self.tree_id = tree_id


class LabelingError(ReproError):
    """Raised when a distance/ancestry query cannot be answered from labels."""


class MatcherError(ReproError):
    """Raised for invalid matcher configuration or inputs."""


class ObjectiveError(ReproError):
    """Raised for invalid objective-function configuration or evaluation."""


class MappingError(ReproError):
    """Raised for invalid schema mappings or mapping-generator configuration."""


class ClusteringError(ReproError):
    """Raised for invalid clustering configuration or internal clustering state."""


class ConfigurationError(ReproError):
    """Raised when a system-level configuration object is inconsistent."""


class InvalidRequestError(ConfigurationError):
    """Raised when a query or mutation request fails API-boundary validation.

    One class for every backend and every front-end: ``Bellflower``,
    :class:`~repro.service.MatchingService` and
    :class:`~repro.shard.ShardedMatchingService` all raise it for
    out-of-range ``delta``/``top_k`` values, and the envelope codecs of
    :mod:`repro.api` raise it for malformed or version-mismatched wire
    payloads.  It subclasses :class:`ConfigurationError` so callers that
    predate the unified API keep working; new front-ends should catch this
    class to map "the client sent a bad request" to a clean protocol error.
    """


class ShardError(ReproError):
    """Raised for invalid shard-set configuration or cross-shard state."""


class ShardManifestError(ShardError):
    """Raised when a shard-set manifest file is missing, malformed or inconsistent."""


class InjectedFaultError(ReproError):
    """Raised by the fault-injection harness in place of a real shard failure.

    A dedicated class so resilience tests can assert that the *injected*
    fault (and not some genuine bug) is what the retry/failover machinery
    handled, while production code still catches it via :class:`ReproError`
    like any other backend failure.
    """


class IngestError(ReproError):
    """Raised for invalid ingestion-pipeline configuration or run state.

    Covers pipeline-level failures — an unreadable run directory, a resume
    against a manifest written by a different configuration, a merge over an
    empty survivor set.  *Per-document* failures (a malformed DTD, a
    structurally invalid tree) never raise this class: they are quarantined
    with a typed reason record and the run continues.
    """


class WorkloadError(ReproError):
    """Raised when a synthetic workload cannot be generated as requested."""


class TraceError(WorkloadError):
    """Raised when a query-trace file is missing, malformed or unreplayable."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is asked to run an unknown experiment."""

"""repro — Bellflower: clustered XML schema matching.

A from-scratch reproduction of *"Using Element Clustering to Increase the
Efficiency of XML Schema Matching"* (Smiljanić, van Keulen, Jonker — ICDE
2006): the Bellflower schema matcher, the clustered schema matching technique
built around an adapted k-means over mapping elements, the substrates both
depend on (schema model, XSD/DTD parsers, node-labeling distance oracles,
string matchers, Branch-and-Bound mapping generation), and the experiment
harness that regenerates every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import Bellflower, clustering_variant
>>> from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema
>>> repository = RepositoryGenerator(RepositoryProfile(target_node_count=2000)).generate()
>>> matcher = Bellflower(repository, clusterer=clustering_variant("medium").make_clusterer())
>>> result = matcher.match(paper_personal_schema(), delta=0.75)
"""

from repro.errors import (
    ClusteringError,
    ConfigurationError,
    ExperimentError,
    InvalidRequestError,
    LabelingError,
    MappingError,
    MatcherError,
    ObjectiveError,
    ReproError,
    SchemaError,
    SchemaParseError,
    ShardError,
    ShardManifestError,
    UnknownNodeError,
    UnknownTreeError,
    WorkloadError,
)
from repro.schema import (
    DataType,
    NodeKind,
    SchemaNode,
    SchemaRepository,
    SchemaTree,
    TreeBuilder,
    parse_dtd,
    parse_xsd,
)
from repro.matchers import FuzzyNameMatcher, MappingElementSelector, TokenNameMatcher
from repro.objective import BellflowerObjective
from repro.mapping import (
    AStarGenerator,
    BeamSearchGenerator,
    BranchAndBoundGenerator,
    ExhaustiveGenerator,
    SchemaMapping,
    TopKPool,
)
from repro.clustering import FragmentClusterer, KMeansClusterer, TreeClusterer
from repro.system import (
    Bellflower,
    MatchResult,
    clustering_variant,
    preservation_curve,
    standard_variants,
)
from repro.service import (
    MatchingService,
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ThreadPoolTaskExecutor,
    load_snapshot,
    write_snapshot,
)
from repro.shard import (
    ShardedMatchingService,
    load_shard_set,
    write_shard_set,
)
from repro.api import (
    PROTOCOL_VERSION,
    Matcher,
    MatcherServer,
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MutationRequest,
    MutationResponse,
    StatsRequest,
    StatsResponse,
)

__version__ = "1.0.0"

__all__ = [
    "AStarGenerator",
    "BeamSearchGenerator",
    "Bellflower",
    "BellflowerObjective",
    "BranchAndBoundGenerator",
    "ClusteringError",
    "ConfigurationError",
    "DataType",
    "ExhaustiveGenerator",
    "ExperimentError",
    "FragmentClusterer",
    "FuzzyNameMatcher",
    "KMeansClusterer",
    "LabelingError",
    "MappingElementSelector",
    "MappingError",
    "MatchResult",
    "MatcherError",
    "MatchingService",
    "NodeKind",
    "ObjectiveError",
    "ProcessPoolTaskExecutor",
    "ReproError",
    "SchemaError",
    "SchemaMapping",
    "SchemaNode",
    "SchemaParseError",
    "SchemaRepository",
    "SchemaTree",
    "SerialExecutor",
    "ShardError",
    "ShardManifestError",
    "ShardedMatchingService",
    "ThreadPoolTaskExecutor",
    "TokenNameMatcher",
    "TopKPool",
    "TreeBuilder",
    "TreeClusterer",
    "UnknownNodeError",
    "UnknownTreeError",
    "WorkloadError",
    "__version__",
    "clustering_variant",
    "load_shard_set",
    "load_snapshot",
    "parse_dtd",
    "parse_xsd",
    "preservation_curve",
    "standard_variants",
    "write_shard_set",
    "write_snapshot",
]

"""Frozen snapshots: freeze → mmap-load → bit-identical behaviour.

The frozen carrier is pure acceleration — any divergence from the JSON path
would silently corrupt match results rather than crash.  Every test therefore
pins exact equality (rankings, path evidence, counters, cluster reports)
between a frozen-loaded service and its JSON-loaded twin, across all four
execution regimes, through mutation (thaw), compaction, and sharding.
"""

from __future__ import annotations

import copy
import sys
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "service"))
from _equivalence import (  # noqa: E402
    cluster_key,
    counters_key,
    execution_backends,
    path_records_key,
    result_key,
)

from repro.errors import ReproError
from repro.matchers.name import FuzzyNameMatcher
from repro.schema.repository import SchemaRepository
from repro.service import MatchingService, load_snapshot, write_snapshot
from repro.shard import RoundRobinRouter, ShardedMatchingService, load_shard_set, write_shard_set
from repro.storage import (
    FrozenRepository,
    compact_frozen,
    freeze_service,
    freeze_snapshot_file,
    is_frozen_file,
    load_frozen_service,
    open_frozen,
)
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import contact_personal_schema, paper_personal_schema


def make_service(seed: int = 11, nodes: int = 800) -> MatchingService:
    profile = RepositoryProfile(
        target_node_count=nodes,
        min_tree_size=10,
        max_tree_size=60,
        seed=seed,
        name=f"frozen-{seed}",
    )
    return MatchingService(RepositoryGenerator(profile).generate(), matcher=FuzzyNameMatcher())


def full_key(result):
    return (result_key(result), path_records_key(result), counters_key(result), cluster_key(result))


@pytest.fixture(scope="module")
def snapshot_pair(tmp_path_factory):
    """One service written both ways: ``snap.json`` and ``snap.frozen``."""
    target = tmp_path_factory.mktemp("frozen")
    service = make_service()
    write_snapshot(service, target / "snap.json")
    freeze_service(service, target / "snap.frozen")
    return target


@pytest.fixture(scope="module")
def reference_keys(snapshot_pair):
    service = load_snapshot(snapshot_pair / "snap.json")
    return {
        "paper": full_key(service.match(paper_personal_schema())),
        "contact": full_key(service.match(contact_personal_schema())),
    }


class TestFrozenLoadEquivalence:
    def test_load_snapshot_dispatches_on_magic_bytes(self, snapshot_pair):
        frozen = load_snapshot(snapshot_pair / "snap.frozen")
        assert type(frozen.repository) is FrozenRepository
        plain = load_snapshot(snapshot_pair / "snap.json")
        assert type(plain.repository) is SchemaRepository

    def test_frozen_views_satisfy_the_repository_contracts(self, snapshot_pair):
        frozen = load_snapshot(snapshot_pair / "snap.frozen").repository
        plain = load_snapshot(snapshot_pair / "snap.json").repository
        assert frozen.tree_count == plain.tree_count
        assert frozen.node_count == plain.node_count
        assert [t.tree_id for t in frozen.trees()] == [t.tree_id for t in plain.trees()]
        for frozen_tree, plain_tree in zip(frozen.trees(), plain.trees()):
            assert [n.name for n in frozen_tree.nodes()] == [n.name for n in plain_tree.nodes()]
            assert [n.kind for n in frozen_tree.nodes()] == [n.kind for n in plain_tree.nodes()]

    @pytest.mark.parametrize(
        "backend", list(execution_backends()), ids=lambda backend: backend[0]
    )
    def test_match_bit_identical_across_backends(self, snapshot_pair, reference_keys, backend):
        _, factory, share = backend
        executor = factory()
        service = load_frozen_service(snapshot_pair / "snap.frozen", executor=executor)
        try:
            if share:
                service.share_memory()
            assert full_key(service.match(paper_personal_schema())) == reference_keys["paper"]
            assert full_key(service.match(contact_personal_schema())) == reference_keys["contact"]
        finally:
            if share:
                service.unshare_memory()
            if executor is not None:
                executor.close()

    def test_repeated_queries_reuse_the_frozen_views(self, snapshot_pair, reference_keys):
        service = load_snapshot(snapshot_pair / "snap.frozen")
        assert full_key(service.match(paper_personal_schema())) == reference_keys["paper"]
        # The second match may come from the query cache (same as the JSON
        # service) — the mapping identity must hold either way.
        repeat = service.match(paper_personal_schema())
        assert (result_key(repeat), path_records_key(repeat)) == reference_keys["paper"][:2]
        assert type(service.repository) is FrozenRepository  # queries never thaw


class TestFreezeSnapshotFile:
    def test_json_to_frozen_conversion_is_bit_identical(
        self, snapshot_pair, reference_keys, tmp_path
    ):
        target = tmp_path / "converted.frozen"
        header = freeze_snapshot_file(snapshot_pair / "snap.json", target)
        assert is_frozen_file(target)
        assert header["repository"]["node_count"] == load_snapshot(
            snapshot_pair / "snap.json"
        ).repository.node_count
        service = load_frozen_service(target)
        assert full_key(service.match(paper_personal_schema())) == reference_keys["paper"]

    def test_frozen_input_is_rejected(self, snapshot_pair, tmp_path):
        with pytest.raises(ReproError, match="already"):
            freeze_snapshot_file(snapshot_pair / "snap.frozen", tmp_path / "twice.frozen")

    def test_inspectable_header_matches_the_repository(self, snapshot_pair):
        snapshot = open_frozen(snapshot_pair / "snap.frozen", cached=False)
        repository = load_snapshot(snapshot_pair / "snap.json").repository
        assert snapshot.header["repository"]["tree_count"] == repository.tree_count
        assert snapshot.header["repository"]["node_count"] == repository.node_count
        assert len(snapshot.header["indexes"]) >= 1


class TestMutationThaw:
    def test_mutation_thaws_and_stays_equivalent(self, snapshot_pair):
        json_service = load_snapshot(snapshot_pair / "snap.json")
        frozen_service = load_snapshot(snapshot_pair / "snap.frozen")
        extra = RepositoryGenerator(
            RepositoryProfile(target_node_count=60, min_tree_size=10, max_tree_size=30, seed=7)
        ).generate().tree(0)

        for service in (json_service, frozen_service):
            service.remove_tree(2)
            tree = copy.deepcopy(extra)
            tree.tree_id = -1
            service.add_tree(tree)

        # The first mutation materializes the repository in place: the frozen
        # service must behave as a plain in-memory one from then on.
        assert type(frozen_service.repository) is SchemaRepository
        for schema in (paper_personal_schema(), contact_personal_schema()):
            assert full_key(frozen_service.match(schema)) == full_key(json_service.match(schema))


class TestCompaction:
    def test_compact_equals_mutate_then_query(self, snapshot_pair, tmp_path):
        extra = RepositoryGenerator(
            RepositoryProfile(target_node_count=60, min_tree_size=10, max_tree_size=30, seed=7)
        ).generate().tree(0)

        mutated = load_snapshot(snapshot_pair / "snap.json")
        mutated.remove_tree(2)
        tree = copy.deepcopy(extra)
        tree.tree_id = -1
        mutated.add_tree(tree)

        added = copy.deepcopy(extra)
        added.tree_id = -1
        target = tmp_path / "gen2.frozen"
        compact_frozen(
            snapshot_pair / "snap.frozen", target, add_trees=[added], remove_tree_ids=[2]
        )
        compacted = load_frozen_service(target)
        assert compacted.repository.tree_count == mutated.repository.tree_count
        for schema in (paper_personal_schema(), contact_personal_schema()):
            reference = mutated.match(schema)
            result = compacted.match(schema)
            assert result_key(result) == result_key(reference)
            assert path_records_key(result) == path_records_key(reference)

    def test_pure_copy_compaction_preserves_the_digest(self, snapshot_pair, tmp_path):
        target = tmp_path / "copy.frozen"
        compact_frozen(snapshot_pair / "snap.frozen", target)
        source = open_frozen(snapshot_pair / "snap.frozen", cached=False)
        copied = open_frozen(target, cached=False)
        assert copied.header["repository"]["digest"] == source.header["repository"]["digest"]
        assert copied.header["repository"]["node_count"] == source.header["repository"]["node_count"]

    def test_unknown_remove_id_is_rejected(self, snapshot_pair, tmp_path):
        with pytest.raises(ReproError):
            compact_frozen(
                snapshot_pair / "snap.frozen", tmp_path / "bad.frozen", remove_tree_ids=[10**6]
            )


class TestFrozenShardSet:
    def test_frozen_manifest_round_trip_is_bit_identical(self, tmp_path):
        repository = RepositoryGenerator(
            RepositoryProfile(
                target_node_count=700, min_tree_size=10, max_tree_size=55, seed=23, name="shards"
            )
        ).generate()
        service = ShardedMatchingService.from_repository(
            repository, 3, router=RoundRobinRouter(), element_threshold=0.5
        )
        manifest = write_shard_set(service, tmp_path, frozen=True)
        for entry in manifest["shards"]:
            assert entry["path"].endswith(".frozen")
            assert is_frozen_file(tmp_path / entry["path"])

        loaded = load_shard_set(tmp_path / "manifest.json")
        for shard in loaded.shards:
            assert type(shard.repository) is FrozenRepository
        for schema in (paper_personal_schema(), contact_personal_schema()):
            assert loaded.match(schema).ranking_key() == service.match(schema).ranking_key()


class TestRoundTripProperty:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16), nodes=st.integers(120, 320))
    def test_freeze_load_equals_json_load(self, seed, nodes):
        service = make_service(seed=seed, nodes=nodes)
        with tempfile.TemporaryDirectory() as scratch:
            base = Path(scratch)
            write_snapshot(service, base / "snap.json")
            freeze_service(service, base / "snap.frozen")
            json_loaded = load_snapshot(base / "snap.json")
            frozen_loaded = load_snapshot(base / "snap.frozen")
            for schema in (paper_personal_schema(), contact_personal_schema()):
                assert full_key(frozen_loaded.match(schema)) == full_key(json_loaded.match(schema))

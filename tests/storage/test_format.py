"""The frozen container: packing carrier, segment table, torn-write rejection.

A frozen snapshot is trusted at ``mmap`` speed — nothing re-parses it after
open — so the open-time validation is the only line of defence against a
truncated, corrupted, or foreign file.  These tests write real containers,
then damage them byte-by-byte and assert every damage mode is rejected with
:class:`~repro.errors.ReproError` before any view is handed out.
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path

import pytest

from repro.errors import ReproError
from repro.storage import (
    FROZEN_FORMAT,
    FROZEN_MAGIC,
    FROZEN_VERSION,
    is_frozen_file,
    is_frozen_prefix,
    open_frozen,
    pack_int32,
    unpack_int32,
)
from repro.storage.format import SegmentWriter, int32_view
from repro.utils.fileio import write_bytes_atomic

#: magic, uint32 container version, uint32 header length (little-endian).
PREAMBLE = struct.Struct("<8sII")


def _align(offset: int) -> int:
    return (offset + 7) // 8 * 8


def write_sample(path: Path) -> dict:
    """A small but fully populated container: every segment kind, 3 segments."""
    writer = SegmentWriter()
    writer.add_int32("forest/parents", [-1, 0, 0, 1, -5, 2_000_000_000])
    writer.add_int8("forest/kinds", [0, 1, 2, 1, 0, 3])
    writer.add_bytes("names/blob", "libroébook".encode("utf-8"))
    return writer.write(path, {"repository": {"name": "sample", "trees": 1, "nodes": 6}})


def rewrite_header(path: Path, mutate=None, raw_header: bytes | None = None) -> None:
    """Replace the JSON header in place, keeping the data region byte-identical.

    Segment offsets are relative to the aligned data start, so re-aligning
    after the new header preserves their validity — only the header changed.
    """
    data = path.read_bytes()
    magic, version, header_length = PREAMBLE.unpack_from(data, 0)
    old_start = _align(PREAMBLE.size + header_length)
    if raw_header is None:
        header = json.loads(data[PREAMBLE.size : PREAMBLE.size + header_length])
        raw_header = json.dumps(mutate(header) or header, separators=(",", ":")).encode("utf-8")
    new_start = _align(PREAMBLE.size + len(raw_header))
    padding = b"\x00" * (new_start - PREAMBLE.size - len(raw_header))
    path.write_bytes(
        PREAMBLE.pack(magic, version, len(raw_header)) + raw_header + padding + data[old_start:]
    )


class TestInt32Carrier:
    @pytest.mark.parametrize(
        "values",
        [[], [0], [1, -1, 2_147_483_647, -2_147_483_648], list(range(-50, 50))],
    )
    def test_pack_unpack_round_trip(self, values):
        packed = pack_int32(values)
        assert len(packed) == 4 * len(values)
        assert list(unpack_int32(packed)) == values

    def test_int32_view_reads_packed_bytes_without_copying(self):
        values = [7, -9, 0, 123_456]
        view = int32_view(memoryview(pack_int32(values)))
        assert list(view) == values

    def test_unpack_accepts_memoryview_slices(self):
        packed = pack_int32([10, 20, 30, 40])
        assert list(unpack_int32(memoryview(packed)[4:12])) == [20, 30]


class TestSegmentWriter:
    def test_round_trip_preserves_every_segment_kind(self, tmp_path):
        target = tmp_path / "sample.frozen"
        header = write_sample(target)
        assert header["format"] == FROZEN_FORMAT
        assert header["version"] == FROZEN_VERSION

        snapshot = open_frozen(target, cached=False)
        assert snapshot.header["repository"]["name"] == "sample"
        assert snapshot.segment_names() == ["forest/parents", "forest/kinds", "names/blob"]
        assert list(snapshot.int32("forest/parents")) == [-1, 0, 0, 1, -5, 2_000_000_000]
        assert list(snapshot.int8("forest/kinds")) == [0, 1, 2, 1, 0, 3]
        assert bytes(snapshot.raw("names/blob")).decode("utf-8") == "libroébook"

    def test_segment_offsets_are_eight_byte_aligned(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        snapshot = open_frozen(target, cached=False)
        assert snapshot.data_start % 8 == 0
        for entry in snapshot.header["segments"]:
            assert entry["offset"] % 8 == 0

    def test_duplicate_segment_names_are_rejected(self):
        writer = SegmentWriter()
        writer.add_int32("forest/parents", [0])
        with pytest.raises(ReproError, match="duplicate"):
            writer.add_int8("forest/parents", [0])

    def test_kind_mismatch_is_rejected_at_read(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        snapshot = open_frozen(target, cached=False)
        with pytest.raises(ReproError, match="not int32"):
            snapshot.int32("names/blob")
        with pytest.raises(ReproError, match="not int8"):
            snapshot.int8("forest/parents")

    def test_unknown_segment_name_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        with pytest.raises(ReproError, match="no segment"):
            open_frozen(target, cached=False).int32("forest/missing")


class TestOpenValidation:
    def test_non_frozen_file_is_rejected(self, tmp_path):
        target = tmp_path / "doc.json"
        target.write_bytes(b'{"format": "bellflower-service-snapshot"}')
        with pytest.raises(ReproError, match="bad magic"):
            open_frozen(target, cached=False)

    def test_file_shorter_than_the_preamble_is_rejected(self, tmp_path):
        target = tmp_path / "stub.frozen"
        target.write_bytes(FROZEN_MAGIC[:4])
        with pytest.raises(ReproError, match="shorter than the preamble"):
            open_frozen(target, cached=False)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="cannot open"):
            open_frozen(tmp_path / "absent.frozen", cached=False)

    def test_truncation_at_any_structural_point_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        image = target.read_bytes()
        snapshot = open_frozen(target, cached=False)
        last_byte = snapshot.data_start + max(
            entry["offset"] + entry["length"] for entry in snapshot.header["segments"]
        )
        _, _, header_length = PREAMBLE.unpack_from(image, 0)
        cuts = [
            PREAMBLE.size - 1,  # inside the preamble
            PREAMBLE.size + header_length // 2,  # inside the JSON header
            snapshot.data_start + 3,  # inside the first segment
            last_byte - 1,  # one byte short of the last segment
        ]
        for cut in cuts:
            torn = tmp_path / f"torn-{cut}.frozen"
            torn.write_bytes(image[:cut])
            with pytest.raises(ReproError):
                open_frozen(torn, cached=False)

    def test_corrupt_magic_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        image = bytearray(target.read_bytes())
        image[0] ^= 0xFF
        target.write_bytes(bytes(image))
        with pytest.raises(ReproError, match="bad magic"):
            open_frozen(target, cached=False)

    def test_unsupported_container_version_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        image = bytearray(target.read_bytes())
        struct.pack_into("<I", image, 8, FROZEN_VERSION + 1)
        target.write_bytes(bytes(image))
        with pytest.raises(ReproError, match="container version"):
            open_frozen(target, cached=False)

    def test_garbage_header_bytes_are_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        image = bytearray(target.read_bytes())
        _, _, header_length = PREAMBLE.unpack_from(image, 0)
        image[PREAMBLE.size : PREAMBLE.size + header_length] = b"\xff" * header_length
        target.write_bytes(bytes(image))
        with pytest.raises(ReproError, match="corrupt header"):
            open_frozen(target, cached=False)

    def test_foreign_document_format_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)

        def mutate(header):
            header["format"] = "some-other-format"

        rewrite_header(target, mutate)
        with pytest.raises(ReproError, match="not a frozen service snapshot"):
            open_frozen(target, cached=False)

    def test_future_document_version_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)

        def mutate(header):
            header["version"] = FROZEN_VERSION + 1

        rewrite_header(target, mutate)
        with pytest.raises(ReproError, match="snapshot version"):
            open_frozen(target, cached=False)

    def test_missing_segment_table_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)

        def mutate(header):
            del header["segments"]

        rewrite_header(target, mutate)
        with pytest.raises(ReproError, match="no segment table"):
            open_frozen(target, cached=False)

    @pytest.mark.parametrize(
        "field, value, message",
        [
            ("kind", "float64", "unknown kind"),
            ("count", 999, "inconsistent geometry"),
            ("offset", -8, "inconsistent geometry"),
            ("offset", 10**9, "truncated"),
            ("length", "not-a-number", "malformed descriptor"),
        ],
    )
    def test_bad_segment_geometry_is_rejected(self, tmp_path, field, value, message):
        target = tmp_path / "sample.frozen"
        write_sample(target)

        def mutate(header):
            header["segments"][0][field] = value

        rewrite_header(target, mutate)
        with pytest.raises(ReproError, match=message):
            open_frozen(target, cached=False)

    def test_header_that_is_not_json_object_is_rejected(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        rewrite_header(target, raw_header=b"[1, 2, 3]")
        with pytest.raises(ReproError, match="not a frozen service snapshot"):
            open_frozen(target, cached=False)


class TestOpenCache:
    def test_cached_open_returns_one_mapping_per_generation(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        first = open_frozen(target)
        assert open_frozen(target) is first
        # A rewrite is an atomic rename → new (size, mtime) → a fresh mapping.
        writer = SegmentWriter()
        writer.add_int32("forest/parents", [-1])
        writer.write(target, {"repository": {"name": "next", "trees": 1, "nodes": 1}})
        os.utime(target, ns=(1, 1))
        assert open_frozen(target) is not first


class TestSniffing:
    def test_frozen_files_are_recognized(self, tmp_path):
        target = tmp_path / "sample.frozen"
        write_sample(target)
        assert is_frozen_prefix(target.read_bytes()[:8])
        assert is_frozen_file(target)

    def test_json_and_missing_files_are_not(self, tmp_path):
        doc = tmp_path / "doc.json"
        doc.write_text("{}", encoding="utf-8")
        assert not is_frozen_file(doc)
        assert not is_frozen_file(tmp_path / "absent")
        assert not is_frozen_prefix(b"{}")


class TestWriteBytesAtomic:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "blob.bin"
        write_bytes_atomic(target, b"\x00first")
        assert target.read_bytes() == b"\x00first"
        write_bytes_atomic(target, b"\x01second")
        assert target.read_bytes() == b"\x01second"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        write_bytes_atomic(tmp_path / "blob.bin", b"payload")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

    def test_a_failed_write_preserves_the_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "blob.bin"
        write_bytes_atomic(target, b"good")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            write_bytes_atomic(target, b"bad")
        assert target.read_bytes() == b"good"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["blob.bin"]

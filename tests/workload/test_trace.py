"""Query traces: seeded synthesis, roundtrips, bit-identical replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceError
from repro.workload import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import book_personal_schema, contact_personal_schema
from repro.workload.trace import (
    QueryTrace,
    load_trace,
    replay_trace,
    save_trace,
    synthesize_zipf_trace,
    trace_from_schemas,
)


@pytest.fixture(scope="module")
def small_repository():
    return RepositoryGenerator(RepositoryProfile(target_node_count=300, seed=11)).generate()


@pytest.fixture(scope="module")
def service(small_repository):
    from repro.service import MatchingService

    return MatchingService(small_repository, element_threshold=0.45, delta=0.7)


class TestSynthesis:
    def test_same_parameters_same_trace(self):
        first = synthesize_zipf_trace(25, seed=7)
        second = synthesize_zipf_trace(25, seed=7)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_different_trace(self):
        assert (
            synthesize_zipf_trace(25, seed=7).to_dict()
            != synthesize_zipf_trace(25, seed=8).to_dict()
        )

    def test_zipf_skew_produces_duplicates(self):
        trace = synthesize_zipf_trace(60, seed=7)
        assert trace.unique_query_count() < len(trace.queries)

    def test_invalid_parameters_are_typed(self):
        with pytest.raises(TraceError, match="length"):
            synthesize_zipf_trace(0, seed=1)
        with pytest.raises(TraceError, match="skew"):
            synthesize_zipf_trace(5, seed=1, skew=0.0)
        with pytest.raises(TraceError, match="non-empty"):
            synthesize_zipf_trace(5, seed=1, deltas=())


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        trace = synthesize_zipf_trace(10, seed=3)
        save_trace(trace, tmp_path / "trace.json")
        loaded = load_trace(tmp_path / "trace.json")
        assert loaded.to_dict() == trace.to_dict()

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            load_trace(tmp_path / "nope.json")

    def test_invalid_json_is_typed(self, tmp_path):
        (tmp_path / "bad.json").write_text("{truncated", encoding="utf-8")
        with pytest.raises(TraceError, match="not valid JSON"):
            load_trace(tmp_path / "bad.json")

    def test_wrong_format_is_typed(self, tmp_path):
        (tmp_path / "other.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(TraceError, match="not a bellflower-query-trace"):
            load_trace(tmp_path / "other.json")

    def test_empty_trace_is_rejected(self):
        with pytest.raises(TraceError, match="no queries"):
            QueryTrace(name="empty", queries=[])


class TestRecording:
    def test_trace_from_schemas_preserves_order_and_options(self):
        trace = trace_from_schemas(
            "recorded", [book_personal_schema(), contact_personal_schema()], top_k=3
        )
        assert [query.top_k for query in trace.queries] == [3, 3]
        assert trace.queries[0].build_schema().name == "personal-book"


class TestReplay:
    def test_match_many_and_single_replay_agree(self, service):
        trace = synthesize_zipf_trace(20, seed=7)
        batched = replay_trace(trace, service)
        single = replay_trace(trace, service, use_match_many=False)
        assert batched["query_digests"] == single["query_digests"]
        assert batched["ranking_digest"] == single["ranking_digest"]

    def test_sharded_backend_is_bit_identical(self, small_repository, service):
        from repro.shard import ShardedMatchingService

        trace = synthesize_zipf_trace(15, seed=7)
        reference = replay_trace(trace, service)
        sharded = ShardedMatchingService.from_repository(
            small_repository, 3, element_threshold=0.45, delta=0.7
        )
        try:
            report = replay_trace(trace, sharded)
        finally:
            sharded.close()
        assert report["ranking_digest"] == reference["ranking_digest"]

    def test_report_shape(self, service):
        trace = synthesize_zipf_trace(12, seed=5)
        report = replay_trace(trace, service)
        assert report["queries"] == 12
        assert len(report["query_digests"]) == 12
        assert report["unique_queries"] == trace.unique_query_count()
        assert report["partial"] == 0 and report["degraded"] == 0

"""Tests for personal-schema builders, the bundled corpus and repository sampling."""

import pytest

from repro.errors import WorkloadError
from repro.schema.validation import validate_repository, validate_tree
from repro.workload.corpus import bundled_corpus_documents, load_bundled_corpus
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
    publication_personal_schema,
    purchase_personal_schema,
)
from repro.workload.sampling import sample_repository


class TestPersonalSchemas:
    def test_paper_schema_shape(self):
        schema = paper_personal_schema()
        assert schema.node_count == 3
        assert schema.edge_count == 2
        assert schema.root.name == "name"
        assert sorted(schema.names()) == ["address", "email", "name"]

    def test_book_schema_matches_fig1(self):
        schema = book_personal_schema()
        assert schema.root.name == "book"
        assert sorted(schema.names()) == ["author", "book", "title"]

    @pytest.mark.parametrize(
        "builder, expected_nodes",
        [
            (contact_personal_schema, 4),
            (publication_personal_schema, 5),
            (purchase_personal_schema, 6),
        ],
    )
    def test_other_schemas_are_valid_trees(self, builder, expected_nodes):
        schema = builder()
        validate_tree(schema)
        assert schema.node_count == expected_nodes


class TestBundledCorpus:
    def test_documents_cover_both_formats(self):
        documents = bundled_corpus_documents()
        formats = {fmt for fmt, _ in documents.values()}
        assert formats == {"dtd", "xsd"}
        assert len(documents) >= 5

    def test_corpus_loads_into_valid_repository(self):
        repository = load_bundled_corpus()
        validate_repository(repository)
        assert repository.tree_count >= 6
        assert repository.node_count >= 60

    def test_corpus_contains_contact_like_elements(self):
        repository = load_bundled_corpus()
        names = {node.name.lower() for _, node in repository.iter_nodes()}
        assert "name" in names or "fullname" in names
        assert any("mail" in name for name in names)
        assert any("addr" in name or "location" in name for name in names)


class TestSampling:
    def test_sample_reaches_target(self, synthetic_repository):
        sample = sample_repository(synthetic_repository, target_node_count=400, seed=3)
        validate_repository(sample)
        assert sample.node_count >= 400
        # Overshoot is bounded by one tree.
        largest = max(tree.node_count for tree in synthetic_repository.trees())
        assert sample.node_count <= 400 + largest

    def test_sample_is_deterministic(self, synthetic_repository):
        first = sample_repository(synthetic_repository, 300, seed=5)
        second = sample_repository(synthetic_repository, 300, seed=5)
        assert [t.name for t in first.trees()] == [t.name for t in second.trees()]

    def test_sample_clones_trees(self, synthetic_repository):
        sample = sample_repository(synthetic_repository, 200, seed=1)
        for tree in sample.trees():
            assert tree is not synthetic_repository.tree(0)

    def test_sampling_whole_repository_when_target_exceeds_size(self, synthetic_repository):
        sample = sample_repository(synthetic_repository, 10**9, seed=1)
        assert sample.tree_count == synthetic_repository.tree_count

    def test_invalid_arguments(self, synthetic_repository):
        from repro.schema.repository import SchemaRepository

        with pytest.raises(WorkloadError):
            sample_repository(synthetic_repository, 0)
        with pytest.raises(WorkloadError):
            sample_repository(SchemaRepository("empty"), 10)

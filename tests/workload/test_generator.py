"""Tests for the synthetic repository generator and name perturbation."""

import pytest

from repro.errors import WorkloadError
from repro.schema.stats import RepositoryStatistics
from repro.schema.validation import validate_repository
from repro.utils.rng import SeededRandom
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.vocabulary import DOMAINS, NamePerturber, domain_by_name


class TestProfileValidation:
    def test_defaults_are_valid(self):
        RepositoryProfile()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_node_count": 0},
            {"min_tree_size": 50, "max_tree_size": 10},
            {"max_depth": 0},
            {"max_fanout": 0},
            {"fanout_geometric_p": 0.0},
            {"attribute_probability": 1.5},
            {"perturbation_strength": -1.0},
            {"domains": ()},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            RepositoryProfile(**kwargs)

    def test_scaled_profile_keeps_shape(self):
        base = RepositoryProfile(target_node_count=5000, seed=3)
        scaled = base.scaled(1000)
        assert scaled.target_node_count == 1000
        assert scaled.seed == base.seed
        assert scaled.min_tree_size == base.min_tree_size


class TestGeneration:
    def test_repository_is_structurally_valid(self, synthetic_repository):
        validate_repository(synthetic_repository)

    def test_size_close_to_target(self, synthetic_repository):
        target = 1200
        assert target <= synthetic_repository.node_count <= target + 120

    def test_tree_sizes_respect_profile_bounds(self, synthetic_repository):
        for tree in synthetic_repository.trees():
            assert tree.node_count <= 90

    def test_generation_is_deterministic(self):
        profile = RepositoryProfile(target_node_count=600, seed=77)
        first = RepositoryGenerator(profile).generate()
        second = RepositoryGenerator(profile).generate()
        assert first.node_count == second.node_count
        assert [t.node_count for t in first.trees()] == [t.node_count for t in second.trees()]
        assert [n.name for _, n in first.iter_nodes()] == [n.name for _, n in second.iter_nodes()]

    def test_different_seeds_differ(self):
        first = RepositoryGenerator(RepositoryProfile(target_node_count=600, seed=1)).generate()
        second = RepositoryGenerator(RepositoryProfile(target_node_count=600, seed=2)).generate()
        assert [n.name for _, n in first.iter_nodes()] != [n.name for _, n in second.iter_nodes()]

    def test_contains_contact_vocabulary(self, synthetic_repository):
        names = {node.name.lower() for _, node in synthetic_repository.iter_nodes()}
        # Contact blocks guarantee candidates for the paper's personal schema.
        assert any("name" in name for name in names)
        assert any("addr" in name or "location" in name for name in names)

    def test_statistics_are_realistic(self, synthetic_repository):
        stats = RepositoryStatistics.of(synthetic_repository)
        assert stats.tree_count >= 10
        assert 2 <= stats.average_tree_size <= 90
        assert stats.max_height <= 7
        assert stats.distinct_names >= 50
        assert stats.attribute_count > 0


class TestVocabulary:
    def test_domain_lookup(self):
        assert domain_by_name("library").name == "library"
        with pytest.raises(WorkloadError):
            domain_by_name("unknown-domain")

    def test_all_domains_have_vocabulary(self):
        for domain in DOMAINS:
            assert domain.roots and domain.containers and domain.leaves
            assert 0.0 <= domain.contact_block_probability <= 1.0


class TestNamePerturber:
    def test_deterministic_for_same_seed(self):
        first = NamePerturber(SeededRandom(9))
        second = NamePerturber(SeededRandom(9))
        names = ["address", "authorName", "price", "customer"] * 5
        assert [first.perturb(n) for n in names] == [second.perturb(n) for n in names]

    def test_zero_probabilities_are_identity(self):
        perturber = NamePerturber(
            SeededRandom(1),
            abbreviation_probability=0.0,
            synonym_probability=0.0,
            style_probability=0.0,
            suffix_probability=0.0,
            typo_probability=0.0,
        )
        assert perturber.perturb("authorName") == "authorName"

    def test_invalid_probability_rejected(self):
        with pytest.raises(WorkloadError):
            NamePerturber(SeededRandom(1), typo_probability=2.0)

    def test_style_toggle_round_trips_shapes(self):
        perturber = NamePerturber(SeededRandom(1))
        assert perturber._toggle_style("author_name") == "authorName"
        assert perturber._toggle_style("authorName") == "author_name"

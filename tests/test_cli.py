"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.schema.serialization import save_repository
from repro.workload.corpus import bundled_corpus_documents


@pytest.fixture
def schema_directory(tmp_path):
    """Write the bundled corpus documents out as real .dtd/.xsd files."""
    for name, (format_name, text) in bundled_corpus_documents().items():
        (tmp_path / f"{name}.{format_name}").write_text(text, encoding="utf-8")
    return tmp_path


@pytest.fixture
def repository_file(tmp_path, synthetic_repository):
    path = tmp_path / "repository.json"
    save_repository(synthetic_repository, path)
    return path


class TestGenerate:
    def test_generate_writes_repository_json(self, tmp_path, capsys):
        out = tmp_path / "repo.json"
        exit_code = main(["generate", "--nodes", "300", "--min-tree-size", "10", "--max-tree-size", "40", "--out", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["trees"]
        assert "wrote" in capsys.readouterr().out


class TestMatch:
    def test_match_against_schema_directory(self, schema_directory, capsys):
        exit_code = main(
            [
                "match",
                "--schema-dir",
                str(schema_directory),
                "--personal",
                '{"book": ["title", "author"]}',
                "--variant",
                "tree",
                "--delta",
                "0.6",
                "--top",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mapping elements" in output
        assert "Δ=" in output
        assert "book ->" in output

    def test_match_against_repository_file(self, repository_file, capsys):
        exit_code = main(
            [
                "match",
                "--repository",
                str(repository_file),
                "--personal",
                '{"name": ["address", "email"]}',
                "--variant",
                "medium",
            ]
        )
        assert exit_code == 0
        assert "useful clusters" in capsys.readouterr().out

    def test_missing_repository_arguments_is_an_error(self, capsys):
        exit_code = main(["match", "--personal", '{"a": []}'])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_personal_json_is_an_error(self, repository_file, capsys):
        exit_code = main(
            ["match", "--repository", str(repository_file), "--personal", "not-json"]
        )
        assert exit_code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_empty_schema_directory_is_an_error(self, tmp_path, capsys):
        exit_code = main(
            ["match", "--schema-dir", str(tmp_path), "--personal", '{"a": ["b"]}']
        )
        assert exit_code == 2
        assert "no .xsd or .dtd" in capsys.readouterr().err


class TestExperimentCommand:
    def test_runs_figure4_at_quick_scale(self, capsys):
        exit_code = main(["experiment", "figure4", "--scale", "quick"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output

    def test_unknown_experiment_is_an_error(self, capsys):
        exit_code = main(["experiment", "table99"])
        assert exit_code == 2
        assert "unknown experiment" in capsys.readouterr().err

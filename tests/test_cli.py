"""Tests for the command-line interface."""

import argparse
import io
import json

import pytest

from repro.cli import main, serve_loop
from repro.schema.builder import TreeBuilder
from repro.schema.serialization import save_repository
from repro.service import MatchingService
from repro.workload.corpus import bundled_corpus_documents


@pytest.fixture
def schema_directory(tmp_path):
    """Write the bundled corpus documents out as real .dtd/.xsd files."""
    for name, (format_name, text) in bundled_corpus_documents().items():
        (tmp_path / f"{name}.{format_name}").write_text(text, encoding="utf-8")
    return tmp_path


@pytest.fixture
def repository_file(tmp_path, synthetic_repository):
    path = tmp_path / "repository.json"
    save_repository(synthetic_repository, path)
    return path


class TestGenerate:
    def test_generate_writes_repository_json(self, tmp_path, capsys):
        out = tmp_path / "repo.json"
        exit_code = main(["generate", "--nodes", "300", "--min-tree-size", "10", "--max-tree-size", "40", "--out", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["trees"]
        assert "wrote" in capsys.readouterr().out


class TestMatch:
    def test_match_against_schema_directory(self, schema_directory, capsys):
        exit_code = main(
            [
                "match",
                "--schema-dir",
                str(schema_directory),
                "--personal",
                '{"book": ["title", "author"]}',
                "--variant",
                "tree",
                "--delta",
                "0.6",
                "--top",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mapping elements" in output
        assert "Δ=" in output
        assert "book ->" in output

    def test_match_against_repository_file(self, repository_file, capsys):
        exit_code = main(
            [
                "match",
                "--repository",
                str(repository_file),
                "--personal",
                '{"name": ["address", "email"]}',
                "--variant",
                "medium",
            ]
        )
        assert exit_code == 0
        assert "useful clusters" in capsys.readouterr().out

    def test_missing_repository_arguments_is_an_error(self, capsys):
        exit_code = main(["match", "--personal", '{"a": []}'])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_personal_json_is_an_error(self, repository_file, capsys):
        exit_code = main(
            ["match", "--repository", str(repository_file), "--personal", "not-json"]
        )
        assert exit_code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_empty_schema_directory_is_an_error(self, tmp_path, capsys):
        exit_code = main(
            ["match", "--schema-dir", str(tmp_path), "--personal", '{"a": ["b"]}']
        )
        assert exit_code == 2
        assert "no .xsd or .dtd" in capsys.readouterr().err


class TestExperimentCommand:
    def test_runs_figure4_at_quick_scale(self, capsys):
        exit_code = main(["experiment", "figure4", "--scale", "quick"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output

    def test_unknown_experiment_is_an_error(self, capsys):
        exit_code = main(["experiment", "table99"])
        assert exit_code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSnapshotQueryCommands:
    def test_snapshot_then_top_k_query_with_process_executor(self, tmp_path, repository_file, capsys):
        snapshot_path = tmp_path / "repo.snapshot.json"
        assert main(["snapshot", "--repository", str(repository_file), "--out", str(snapshot_path)]) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "query",
                "--snapshot",
                str(snapshot_path),
                "--personal",
                '{"person": ["name", "email"]}',
                "--top-k",
                "3",
                "--workers",
                "2",
                "--executor",
                "process",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "useful clusters" in output


def _serve(service, lines, top=5, top_k=None):
    """Run the serve loop over literal request lines; return parsed responses."""
    out = io.StringIO()
    args = argparse.Namespace(top=top, top_k=top_k)
    exit_code = serve_loop(service, lines, out, args)
    assert exit_code == 0
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServeLoop:
    @pytest.fixture
    def service(self, synthetic_repository):
        return MatchingService(synthetic_repository, element_threshold=0.5)

    def test_valid_query_answers_with_mappings(self, service):
        (response,) = _serve(service, ['{"personal": {"person": ["name", "email"]}}'])
        assert "mappings" in response
        assert response["mapping_count"] >= 0

    def test_non_dict_json_lines_produce_error_envelopes(self, service):
        responses = _serve(
            service,
            [
                "[1, 2]",
                '"hello"',
                "42",
                "null",
                '{"personal": {"person": ["name", "email"]}}',
            ],
        )
        assert len(responses) == 5
        for bad in responses[:4]:
            assert "error" in bad and "must be a JSON object" in bad["error"]
        assert "mappings" in responses[4]  # the loop survived every bad line

    def test_invalid_json_produces_error_envelope(self, service):
        responses = _serve(service, ["not json at all", '{"stats": true}'])
        assert "error" in responses[0]
        assert "stats" in responses[1]

    def test_unknown_request_kind_is_an_error(self, service):
        (response,) = _serve(service, ['{"frobnicate": 1}'])
        assert "personal, add, remove, stats" in response["error"]

    def test_negative_top_is_an_error_not_a_mis_slice(self, service):
        (response,) = _serve(
            service, ['{"personal": {"person": ["name", "email"]}, "top": -1}']
        )
        assert "top must be non-negative" in response["error"]

    def test_unexpected_exception_keeps_the_loop_alive(self, service, monkeypatch):
        calls = {"count": 0}
        original = MatchingService.match

        def flaky_match(self, personal_schema, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("simulated internal failure")
            return original(self, personal_schema, **kwargs)

        monkeypatch.setattr(MatchingService, "match", flaky_match)
        responses = _serve(
            service,
            [
                '{"personal": {"person": ["name", "email"]}}',
                '{"personal": {"person": ["name", "email"]}}',
            ],
        )
        assert responses[0] == {"error": "simulated internal failure", "type": "RuntimeError"}
        assert "mappings" in responses[1]

    def test_blank_lines_are_skipped(self, service):
        responses = _serve(service, ["", "   ", '{"stats": true}'])
        assert len(responses) == 1

    def test_mutations_and_top_k_through_the_loop(self, service):
        responses = _serve(
            service,
            [
                json.dumps({"add": {"zqxroot": ["zqxchild"]}, "name": "served-tree"}),
                json.dumps({"personal": {"zqxroot": ["zqxchild"]}, "top_k": 1}),
                json.dumps({"remove": 10**9}),  # invalid id: error envelope, not a crash
                json.dumps({"stats": True}),
            ],
        )
        assert responses[0]["ok"] is True
        assert responses[1]["mapping_count"] >= 1
        assert len(responses[1]["mappings"]) <= 1
        assert "error" in responses[2]
        assert responses[3]["stats"]["trees_added"] == 1

"""Tests for the command-line interface."""

import argparse
import io
import json

import pytest

from repro.cli import main, serve_loop
from repro.schema.builder import TreeBuilder
from repro.schema.serialization import save_repository
from repro.service import MatchingService
from repro.workload.corpus import bundled_corpus_documents


@pytest.fixture
def schema_directory(tmp_path):
    """Write the bundled corpus documents out as real .dtd/.xsd files."""
    for name, (format_name, text) in bundled_corpus_documents().items():
        (tmp_path / f"{name}.{format_name}").write_text(text, encoding="utf-8")
    return tmp_path


@pytest.fixture
def repository_file(tmp_path, synthetic_repository):
    path = tmp_path / "repository.json"
    save_repository(synthetic_repository, path)
    return path


class TestGenerate:
    def test_generate_writes_repository_json(self, tmp_path, capsys):
        out = tmp_path / "repo.json"
        exit_code = main(["generate", "--nodes", "300", "--min-tree-size", "10", "--max-tree-size", "40", "--out", str(out)])
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["trees"]
        assert "wrote" in capsys.readouterr().out


class TestMatch:
    def test_match_against_schema_directory(self, schema_directory, capsys):
        exit_code = main(
            [
                "match",
                "--schema-dir",
                str(schema_directory),
                "--personal",
                '{"book": ["title", "author"]}',
                "--variant",
                "tree",
                "--delta",
                "0.6",
                "--top",
                "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mapping elements" in output
        assert "Δ=" in output
        assert "book ->" in output

    def test_match_against_repository_file(self, repository_file, capsys):
        exit_code = main(
            [
                "match",
                "--repository",
                str(repository_file),
                "--personal",
                '{"name": ["address", "email"]}',
                "--variant",
                "medium",
            ]
        )
        assert exit_code == 0
        assert "useful clusters" in capsys.readouterr().out

    def test_missing_repository_arguments_is_an_error(self, capsys):
        exit_code = main(["match", "--personal", '{"a": []}'])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_personal_json_is_an_error(self, repository_file, capsys):
        exit_code = main(
            ["match", "--repository", str(repository_file), "--personal", "not-json"]
        )
        assert exit_code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_empty_schema_directory_is_an_error(self, tmp_path, capsys):
        exit_code = main(
            ["match", "--schema-dir", str(tmp_path), "--personal", '{"a": ["b"]}']
        )
        assert exit_code == 2
        assert "no .xsd or .dtd" in capsys.readouterr().err


class TestExperimentCommand:
    def test_runs_figure4_at_quick_scale(self, capsys):
        exit_code = main(["experiment", "figure4", "--scale", "quick"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output

    def test_unknown_experiment_is_an_error(self, capsys):
        exit_code = main(["experiment", "table99"])
        assert exit_code == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSnapshotQueryCommands:
    def test_snapshot_then_top_k_query_with_process_executor(self, tmp_path, repository_file, capsys):
        snapshot_path = tmp_path / "repo.snapshot.json"
        assert main(["snapshot", "--repository", str(repository_file), "--out", str(snapshot_path)]) == 0
        capsys.readouterr()
        exit_code = main(
            [
                "query",
                "--snapshot",
                str(snapshot_path),
                "--personal",
                '{"person": ["name", "email"]}',
                "--top-k",
                "3",
                "--workers",
                "2",
                "--executor",
                "process",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "useful clusters" in output


def _serve(service, lines, top=5, top_k=None):
    """Run the serve loop over literal request lines; return parsed responses."""
    out = io.StringIO()
    args = argparse.Namespace(top=top, top_k=top_k)
    exit_code = serve_loop(service, lines, out, args)
    assert exit_code == 0
    return [json.loads(line) for line in out.getvalue().splitlines()]


class TestServeLoop:
    @pytest.fixture
    def service(self, synthetic_repository):
        return MatchingService(synthetic_repository, element_threshold=0.5)

    def test_valid_query_answers_with_mappings(self, service):
        (response,) = _serve(service, ['{"personal": {"person": ["name", "email"]}}'])
        assert "mappings" in response
        assert response["mapping_count"] >= 0

    def test_non_dict_json_lines_produce_error_envelopes(self, service):
        responses = _serve(
            service,
            [
                "[1, 2]",
                '"hello"',
                "42",
                "null",
                '{"personal": {"person": ["name", "email"]}}',
            ],
        )
        assert len(responses) == 5
        for bad in responses[:4]:
            assert "error" in bad and "must be a JSON object" in bad["error"]
        assert "mappings" in responses[4]  # the loop survived every bad line

    def test_invalid_json_produces_error_envelope(self, service):
        responses = _serve(service, ["not json at all", '{"stats": true}'])
        assert "error" in responses[0]
        assert "stats" in responses[1]

    def test_unknown_request_kind_is_an_error(self, service):
        (response,) = _serve(service, ['{"frobnicate": 1}'])
        assert "personal, batch, add, remove, stats" in response["error"]

    def test_negative_top_is_an_error_not_a_mis_slice(self, service):
        (response,) = _serve(
            service, ['{"personal": {"person": ["name", "email"]}, "top": -1}']
        )
        assert "top must be non-negative" in response["error"]

    def test_unexpected_exception_keeps_the_loop_alive(self, service, monkeypatch):
        calls = {"count": 0}
        original = MatchingService.match

        def flaky_match(self, personal_schema, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("simulated internal failure")
            return original(self, personal_schema, **kwargs)

        monkeypatch.setattr(MatchingService, "match", flaky_match)
        responses = _serve(
            service,
            [
                '{"personal": {"person": ["name", "email"]}}',
                '{"personal": {"person": ["name", "email"]}}',
            ],
        )
        assert responses[0] == {"error": "simulated internal failure", "type": "RuntimeError"}
        assert "mappings" in responses[1]

    def test_blank_lines_are_skipped(self, service):
        responses = _serve(service, ["", "   ", '{"stats": true}'])
        assert len(responses) == 1

    def test_batch_request_answers_every_query(self, service):
        (response,) = _serve(
            service,
            [json.dumps({"batch": [{"person": ["name", "email"]}, {"book": ["title"]}], "top": 2})],
        )
        assert response["queries"] == 2
        assert len(response["results"]) == 2
        for entry in response["results"]:
            assert "mapping_count" in entry
            assert len(entry["mappings"]) <= 2

    def test_empty_or_non_list_batch_is_an_error(self, service):
        responses = _serve(service, ['{"batch": []}', '{"batch": {"a": []}}'])
        for response in responses:
            assert "non-empty JSON array" in response["error"]

    def test_mutations_and_top_k_through_the_loop(self, service):
        responses = _serve(
            service,
            [
                json.dumps({"add": {"zqxroot": ["zqxchild"]}, "name": "served-tree"}),
                json.dumps({"personal": {"zqxroot": ["zqxchild"]}, "top_k": 1}),
                json.dumps({"remove": 10**9}),  # invalid id: error envelope, not a crash
                json.dumps({"stats": True}),
            ],
        )
        assert responses[0]["ok"] is True
        assert responses[1]["mapping_count"] >= 1
        assert len(responses[1]["mappings"]) <= 1
        assert "error" in responses[2]
        assert responses[3]["stats"]["trees_added"] == 1

    def test_stats_report_cache_shape_and_executor(self, service):
        (response,) = _serve(service, ['{"stats": true}'])
        stats = response["stats"]
        assert stats["executor"] == "serial"
        assert stats["query_cache_capacity"] == 64
        assert "repository_version" in stats


class TestShardCommands:
    @pytest.fixture
    def shard_dir(self, tmp_path, repository_file):
        out_dir = tmp_path / "shards"
        exit_code = main(
            [
                "shard", "split",
                "--repository", str(repository_file),
                "--shards", "3",
                "--router", "size-balanced",
                "--out-dir", str(out_dir),
            ]
        )
        assert exit_code == 0
        return out_dir

    def test_split_writes_manifest_and_snapshots(self, shard_dir):
        assert (shard_dir / "manifest.json").exists()
        for shard_id in range(3):
            assert (shard_dir / f"shard-{shard_id}.snapshot.json").exists()

    def test_status_reports_the_set(self, shard_dir, capsys):
        assert main(["shard", "status", "--manifest", str(shard_dir / "manifest.json")]) == 0
        output = capsys.readouterr().out
        assert "3 shards" in output
        assert "size-balanced" in output

    def test_status_on_malformed_manifest_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "manifest.json"
        bad.write_text("{broken")
        assert main(["shard", "status", "--manifest", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_query_against_shards_matches_snapshot_query(
        self, shard_dir, tmp_path, repository_file, capsys
    ):
        snapshot_path = tmp_path / "whole.snapshot.json"
        assert main(["snapshot", "--repository", str(repository_file), "--out", str(snapshot_path)]) == 0
        capsys.readouterr()
        personal = '{"person": ["name", "email"]}'
        assert main(["query", "--snapshot", str(snapshot_path), "--personal", personal, "--delta", "0.5"]) == 0
        unsharded_output = capsys.readouterr().out
        assert (
            main(
                [
                    "query",
                    "--shards", str(shard_dir / "manifest.json"),
                    "--personal", personal,
                    "--delta", "0.5",
                ]
            )
            == 0
        )
        sharded_output = capsys.readouterr().out
        # Identical rankings ⇒ identical printed mapping lines (the headers
        # name the same sizes/cluster counts too, by the equivalence).
        assert sharded_output.splitlines()[1:] == unsharded_output.splitlines()[1:]

    def test_batch_query_prints_one_json_line_per_query(self, shard_dir, tmp_path, capsys):
        batch_file = tmp_path / "batch.jsonl"
        batch_file.write_text(
            '{"person": ["name", "email"]}\n\n{"person": ["name", "email"]}\n'
        )
        exit_code = main(
            [
                "query",
                "--shards", str(shard_dir / "manifest.json"),
                "--batch", str(batch_file),
                "--delta", "0.5",
                "--cache-size", "8",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines()]
        assert len(lines) == 2
        assert lines[0] == lines[1]
        assert "1 duplicates" in captured.err

    def test_batch_query_rejects_negative_top(self, shard_dir, tmp_path, capsys):
        batch_file = tmp_path / "batch.jsonl"
        batch_file.write_text('{"person": ["name"]}\n')
        exit_code = main(
            [
                "query",
                "--shards", str(shard_dir / "manifest.json"),
                "--batch", str(batch_file),
                "--top", "-1",
            ]
        )
        assert exit_code == 2
        assert "top must be non-negative" in capsys.readouterr().err

    def test_query_requires_exactly_one_source_and_one_input(self, shard_dir, tmp_path, capsys):
        manifest = str(shard_dir / "manifest.json")
        assert main(["query", "--personal", '{"a": []}']) == 2
        assert "exactly one of --snapshot or --shards" in capsys.readouterr().err
        assert main(["query", "--shards", manifest]) == 2
        assert "exactly one of --personal or --batch" in capsys.readouterr().err

    def test_rebalance_preserves_cli_query_output(self, shard_dir, capsys):
        manifest = str(shard_dir / "manifest.json")
        personal = '{"person": ["name", "email"]}'
        assert main(["query", "--shards", manifest, "--personal", personal, "--delta", "0.5"]) == 0
        before = capsys.readouterr().out
        assert main(["shard", "rebalance", "--manifest", manifest, "--shards", "2", "--router", "round-robin"]) == 0
        capsys.readouterr()
        assert main(["query", "--shards", manifest, "--personal", personal, "--delta", "0.5"]) == 0
        after = capsys.readouterr().out
        assert before.splitlines()[1:] == after.splitlines()[1:]

    def test_serve_loop_over_a_sharded_service(self, shard_dir):
        from repro.shard import load_shard_set

        service = load_shard_set(shard_dir / "manifest.json")
        responses = _serve(
            service,
            [
                json.dumps({"batch": [{"person": ["name"]}, {"person": ["name"]}], "delta": 0.5}),
                json.dumps({"add": {"zqxroot": ["zqxchild"]}, "name": "served-tree"}),
                json.dumps({"personal": {"zqxroot": ["zqxchild"]}, "top_k": 1}),
                json.dumps({"remove": 10**9}),
                json.dumps({"stats": True}),
            ],
        )
        assert responses[0]["queries"] == 2
        assert responses[1]["ok"] is True
        assert responses[2]["mapping_count"] >= 1
        assert "error" in responses[3]
        stats = responses[4]["stats"]
        assert stats["shards"] == 3
        assert len(stats["per_shard"]) == 3
        assert stats["trees_added"] == 1


class TestIngestCommands:
    @pytest.fixture
    def corpus_dir(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "good.dtd").write_text("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>")
        (corpus / "bad.xsd").write_text(
            "<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'><unclosed>"
        )
        return corpus

    def test_run_status_resume_roundtrip(self, tmp_path, corpus_dir, capsys):
        run_dir = str(tmp_path / "run")
        assert main(
            ["ingest", "run", "--run-dir", run_dir, "--bundled",
             "--source-dir", str(corpus_dir), "--stop-after", "dedupe"]
        ) == 0
        out = capsys.readouterr().out
        assert "merge     pending" in out
        assert "bad.xsd" in out

        assert main(["ingest", "status", "--run-dir", run_dir]) == 0
        assert "snapshot: not yet written" in capsys.readouterr().out

        assert main(
            ["ingest", "resume", "--run-dir", run_dir, "--bundled",
             "--source-dir", str(corpus_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "merge     complete" in out
        assert "out.frozen" in out

    def test_run_twice_is_a_clean_error(self, tmp_path, corpus_dir, capsys):
        run_dir = str(tmp_path / "run")
        args = ["ingest", "run", "--run-dir", run_dir, "--source-dir", str(corpus_dir)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "error:" in capsys.readouterr().err

    def test_status_on_a_non_run_directory_is_a_clean_error(self, tmp_path, capsys):
        assert main(["ingest", "status", "--run-dir", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceCommands:
    def test_synth_then_replay_against_ingested_snapshot(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert main(["ingest", "run", "--run-dir", run_dir, "--bundled"]) == 0
        trace_path = str(tmp_path / "trace.json")
        assert main(
            ["trace", "synth", "--out", trace_path, "--length", "12", "--seed", "7"]
        ) == 0
        capsys.readouterr()
        snapshot = str(tmp_path / "run" / "out.frozen")
        assert main(["trace", "replay", "--trace", trace_path, "--snapshot", snapshot]) == 0
        batched = capsys.readouterr().out
        assert main(
            ["trace", "replay", "--trace", trace_path, "--snapshot", snapshot, "--single"]
        ) == 0
        single = capsys.readouterr().out
        digest = [line for line in batched.splitlines() if "ranking digest" in line]
        assert digest and digest == [
            line for line in single.splitlines() if "ranking digest" in line
        ]

    def test_replay_json_report(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        assert main(["ingest", "run", "--run-dir", run_dir, "--bundled"]) == 0
        trace_path = str(tmp_path / "trace.json")
        assert main(["trace", "synth", "--out", trace_path, "--length", "6", "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(
            ["trace", "replay", "--trace", trace_path,
             "--snapshot", str(tmp_path / "run" / "out.frozen"), "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 6
        assert len(report["query_digests"]) == 6

    def test_replay_missing_trace_is_a_clean_error(self, tmp_path, capsys):
        assert main(
            ["trace", "replay", "--trace", str(tmp_path / "nope.json"),
             "--snapshot", str(tmp_path / "nope.frozen")]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_synth_rejects_bad_option_lists(self, tmp_path, capsys):
        assert main(
            ["trace", "synth", "--out", str(tmp_path / "t.json"), "--deltas", "abc"]
        ) == 2
        assert "must be numbers" in capsys.readouterr().err

"""Tests for wall-clock timers."""

import time

import pytest

from repro.utils.timers import StageTimer, Timer


def test_timer_accumulates_elapsed_time():
    timer = Timer()
    timer.start()
    time.sleep(0.01)
    first = timer.stop()
    assert first > 0.0
    timer.start()
    timer.stop()
    assert timer.elapsed >= first


def test_timer_cannot_start_twice():
    timer = Timer().start()
    with pytest.raises(RuntimeError):
        timer.start()
    timer.stop()


def test_timer_cannot_stop_when_not_running():
    with pytest.raises(RuntimeError):
        Timer().stop()


def test_timer_context_manager():
    timer = Timer()
    with timer:
        time.sleep(0.001)
    assert not timer.running
    assert timer.elapsed > 0.0


def test_timer_reset():
    timer = Timer()
    with timer:
        pass
    timer.reset()
    assert timer.elapsed == 0.0


def test_stage_timer_measures_named_stages():
    stages = StageTimer()
    with stages.measure("clustering"):
        time.sleep(0.001)
    with stages.measure("generation"):
        pass
    elapsed = stages.elapsed()
    assert set(elapsed) == {"clustering", "generation"}
    assert elapsed["clustering"] > 0.0
    assert stages.total() == pytest.approx(sum(elapsed.values()))


def test_stage_timer_merge_adds_totals():
    first = StageTimer()
    second = StageTimer()
    with first.measure("a"):
        time.sleep(0.001)
    with second.measure("a"):
        time.sleep(0.001)
    with second.measure("b"):
        pass
    before = first.elapsed()["a"]
    first.merge(second)
    assert first.elapsed()["a"] > before
    assert "b" in first.elapsed()

"""Tests for the named counter set."""

import pytest

from repro.utils.counters import CounterSet


def test_counter_starts_at_zero():
    counters = CounterSet()
    assert counters.get("anything") == 0
    assert "anything" not in counters


def test_increment_returns_new_value():
    counters = CounterSet()
    assert counters.increment("partial_mappings") == 1
    assert counters.increment("partial_mappings", 4) == 5
    assert counters["partial_mappings"] == 5


def test_increment_rejects_negative_amounts():
    counters = CounterSet()
    with pytest.raises(ValueError):
        counters.increment("x", -1)


def test_set_overrides_value():
    counters = CounterSet()
    counters.increment("iterations", 3)
    counters.set("iterations", 1)
    assert counters.get("iterations") == 1


def test_initial_values_are_copied():
    counters = CounterSet({"a": 2})
    assert counters.get("a") == 2


def test_merge_adds_counters():
    first = CounterSet({"a": 1, "b": 2})
    second = CounterSet({"b": 3, "c": 4})
    first.merge(second)
    assert first.as_dict() == {"a": 1, "b": 5, "c": 4}


def test_iteration_is_sorted_by_name():
    counters = CounterSet({"z": 1, "a": 2})
    assert [name for name, _ in counters] == ["a", "z"]


def test_len_counts_distinct_names():
    counters = CounterSet()
    counters.increment("a")
    counters.increment("a")
    counters.increment("b")
    assert len(counters) == 2

"""Tests for ASCII table rendering and number formatting."""

import pytest

from repro.utils.tables import AsciiTable, format_number, format_percent


def test_format_number_integers_use_thousands_separator():
    assert format_number(1234567) == "1,234,567"


def test_format_number_floats_respect_decimals():
    assert format_number(3.14159, decimals=2) == "3.14"


def test_format_number_nan():
    assert format_number(float("nan")) == "nan"


def test_format_percent():
    assert format_percent(0.1234) == "12.3%"
    assert format_percent(1.0, decimals=0) == "100%"


def test_table_requires_columns():
    with pytest.raises(ValueError):
        AsciiTable([])


def test_table_rejects_mismatched_rows():
    table = AsciiTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_table_renders_header_separator_and_rows():
    table = AsciiTable(["variant", "clusters"], title="Demo")
    table.add_row(["small", 251])
    table.add_row(["tree", 95])
    rendered = table.render()
    lines = rendered.splitlines()
    assert lines[0] == "Demo"
    assert "variant" in lines[1] and "clusters" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert "small" in lines[3] and "251" in lines[3]
    assert "tree" in lines[4]


def test_table_aligns_columns():
    table = AsciiTable(["name", "value"])
    table.add_row(["x", 1])
    table.add_row(["longer-name", 1000])
    lines = table.render().splitlines()
    # All data lines have the same width because cells are padded.
    assert len(lines[1]) == len(lines[2]) == len(lines[3])

"""Atomic text writes: the crash-safety primitive under snapshots + manifests."""

from __future__ import annotations

import os

import pytest

from repro.utils.fileio import write_text_atomic


class TestWriteTextAtomic:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "doc.json"
        write_text_atomic(target, "first")
        assert target.read_text(encoding="utf-8") == "first"
        write_text_atomic(target, "second")
        assert target.read_text(encoding="utf-8") == "second"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        write_text_atomic(tmp_path / "doc.json", "payload")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_a_failed_write_preserves_the_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "doc.json"
        write_text_atomic(target, "good")

        # Fail at the final rename: the target must keep its old content and
        # the orphaned temp file must be cleaned up.
        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            write_text_atomic(target, "bad")
        assert target.read_text(encoding="utf-8") == "good"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

"""Atomic text writes: the crash-safety primitive under snapshots + manifests."""

from __future__ import annotations

import os

import json

import pytest

from repro.utils.fileio import write_json_atomic, write_text_atomic


class TestWriteTextAtomic:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "doc.json"
        write_text_atomic(target, "first")
        assert target.read_text(encoding="utf-8") == "first"
        write_text_atomic(target, "second")
        assert target.read_text(encoding="utf-8") == "second"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        write_text_atomic(tmp_path / "doc.json", "payload")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

    def test_a_failed_write_preserves_the_old_content(self, tmp_path, monkeypatch):
        target = tmp_path / "doc.json"
        write_text_atomic(target, "good")

        # Fail at the final rename: the target must keep its old content and
        # the orphaned temp file must be cleaned up.
        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            write_text_atomic(target, "bad")
        assert target.read_text(encoding="utf-8") == "good"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]


class TestWriteJsonAtomic:
    def test_roundtrips_and_replaces(self, tmp_path):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"b": 1, "a": [1, 2]})
        assert json.loads(target.read_text(encoding="utf-8")) == {"b": 1, "a": [1, 2]}
        write_json_atomic(target, {"c": None})
        assert json.loads(target.read_text(encoding="utf-8")) == {"c": None}

    def test_one_canonical_rendering(self, tmp_path):
        # Key order in the input must not leak into the bytes: checkpoints and
        # manifests are compared byte-for-byte across runs.
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_json_atomic(first, {"x": 1, "a": 2})
        write_json_atomic(second, {"a": 2, "x": 1})
        assert first.read_bytes() == second.read_bytes()
        assert first.read_bytes().endswith(b"\n")

    def test_failed_write_preserves_old_document(self, tmp_path, monkeypatch):
        target = tmp_path / "doc.json"
        write_json_atomic(target, {"kept": True})

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            write_json_atomic(target, {"kept": False})
        assert json.loads(target.read_text(encoding="utf-8")) == {"kept": True}
        assert sorted(p.name for p in tmp_path.iterdir()) == ["doc.json"]

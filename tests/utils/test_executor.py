"""Tests for the pluggable task executors (order contract, pooling, errors)."""

from __future__ import annotations

import threading

import pytest

from repro.utils.executor import SerialExecutor, TaskExecutor, ThreadPoolTaskExecutor


@pytest.mark.parametrize("executor", [SerialExecutor(), ThreadPoolTaskExecutor(4)], ids=["serial", "threads"])
def test_map_preserves_input_order(executor):
    items = list(range(50))
    assert executor.map(lambda value: value * value, items) == [value * value for value in items]
    executor.close()


def test_thread_pool_actually_uses_worker_threads():
    seen = set()
    barrier = threading.Barrier(2, timeout=5)

    def record(_):
        try:
            barrier.wait()
        except threading.BrokenBarrierError:  # pragma: no cover - defensive
            pass
        seen.add(threading.current_thread().name)
        return threading.current_thread().name

    with ThreadPoolTaskExecutor(2) as executor:
        executor.map(record, [0, 1])
    assert all(name.startswith("repro-query") for name in seen)


def test_thread_pool_single_item_runs_inline():
    with ThreadPoolTaskExecutor(2) as executor:
        (name,) = executor.map(lambda _: threading.current_thread().name, [0])
    assert name == threading.main_thread().name


def test_task_errors_propagate():
    def boom(value):
        raise ValueError(f"bad {value}")

    with pytest.raises(ValueError):
        SerialExecutor().map(boom, [1])
    with ThreadPoolTaskExecutor(2) as executor:
        with pytest.raises(ValueError):
            executor.map(boom, [1, 2, 3])


def test_close_is_idempotent_and_pool_restarts():
    executor = ThreadPoolTaskExecutor(2)
    assert executor.map(lambda value: value + 1, [1, 2]) == [2, 3]
    executor.close()
    executor.close()
    # A closed executor lazily re-creates its pool on next use.
    assert executor.map(lambda value: value + 1, [3, 4]) == [4, 5]
    executor.close()


def test_invalid_worker_count_rejected():
    with pytest.raises(ValueError):
        ThreadPoolTaskExecutor(0)


def test_subclass_contract():
    class Doubling(TaskExecutor):
        name = "doubling"

        def map(self, fn, items):
            return [fn(item) for item in items]

    with Doubling() as executor:
        assert executor.map(lambda value: value * 2, [1, 2]) == [2, 4]

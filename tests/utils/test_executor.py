"""Tests for the pluggable task executors (order contract, pooling, errors)."""

from __future__ import annotations

import os
import threading

import pytest

from repro.utils.executor import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    TaskExecutor,
    ThreadPoolTaskExecutor,
    split_into_chunks,
)


def _square(value):
    """Module-level so the process executor can pickle it."""
    return value * value


def _boom(value):
    raise ValueError(f"bad {value}")


def _worker_pid(_value):
    return os.getpid()


@pytest.mark.parametrize("executor", [SerialExecutor(), ThreadPoolTaskExecutor(4)], ids=["serial", "threads"])
def test_map_preserves_input_order(executor):
    items = list(range(50))
    assert executor.map(lambda value: value * value, items) == [value * value for value in items]
    executor.close()


def test_thread_pool_actually_uses_worker_threads():
    seen = set()
    barrier = threading.Barrier(2, timeout=5)

    def record(_):
        try:
            barrier.wait()
        except threading.BrokenBarrierError:  # pragma: no cover - defensive
            pass
        seen.add(threading.current_thread().name)
        return threading.current_thread().name

    with ThreadPoolTaskExecutor(2) as executor:
        executor.map(record, [0, 1])
    assert all(name.startswith("repro-query") for name in seen)


def test_thread_pool_single_item_runs_inline():
    with ThreadPoolTaskExecutor(2) as executor:
        (name,) = executor.map(lambda _: threading.current_thread().name, [0])
    assert name == threading.main_thread().name


def test_task_errors_propagate():
    def boom(value):
        raise ValueError(f"bad {value}")

    with pytest.raises(ValueError):
        SerialExecutor().map(boom, [1])
    with ThreadPoolTaskExecutor(2) as executor:
        with pytest.raises(ValueError):
            executor.map(boom, [1, 2, 3])


def test_close_is_idempotent_and_pool_restarts():
    executor = ThreadPoolTaskExecutor(2)
    assert executor.map(lambda value: value + 1, [1, 2]) == [2, 3]
    executor.close()
    executor.close()
    # A closed executor lazily re-creates its pool on next use.
    assert executor.map(lambda value: value + 1, [3, 4]) == [4, 5]
    executor.close()


def test_invalid_worker_count_rejected():
    with pytest.raises(ValueError):
        ThreadPoolTaskExecutor(0)


class TestSplitIntoChunks:
    def test_contiguous_and_balanced(self):
        chunks = split_into_chunks(list(range(10)), 3)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_never_produces_empty_chunks(self):
        assert split_into_chunks([1, 2], 5) == [[1], [2]]
        assert split_into_chunks([], 3) == []

    def test_flattening_restores_input_order(self):
        items = list(range(23))
        for count in (1, 2, 3, 7, 23, 40):
            flattened = [item for chunk in split_into_chunks(items, count) for item in chunk]
            assert flattened == items

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            split_into_chunks([1], 0)


class TestProcessPool:
    def test_map_preserves_input_order(self):
        items = list(range(50))
        with ProcessPoolTaskExecutor(2) as executor:
            assert executor.map(_square, items) == [_square(value) for value in items]

    def test_results_match_serial_executor(self):
        items = list(range(17))
        with ProcessPoolTaskExecutor(3) as executor:
            assert executor.map(_square, items) == SerialExecutor().map(_square, items)

    def test_single_item_runs_inline(self):
        with ProcessPoolTaskExecutor(2) as executor:
            assert executor.map(_worker_pid, [0]) == [os.getpid()]

    def test_multiple_items_use_worker_processes(self):
        with ProcessPoolTaskExecutor(2) as executor:
            pids = executor.map(_worker_pid, list(range(8)))
        assert os.getpid() not in pids

    def test_task_errors_propagate(self):
        with ProcessPoolTaskExecutor(2) as executor:
            with pytest.raises(ValueError):
                executor.map(_boom, [1, 2, 3])

    def test_close_is_idempotent_and_pool_restarts(self):
        executor = ProcessPoolTaskExecutor(2)
        assert executor.map(_square, [1, 2]) == [1, 4]
        executor.close()
        executor.close()
        assert executor.map(_square, [3, 4]) == [9, 16]
        executor.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolTaskExecutor(0)


def test_subclass_contract():
    class Doubling(TaskExecutor):
        name = "doubling"

        def map(self, fn, items):
            return [fn(item) for item in items]

    with Doubling() as executor:
        assert executor.map(lambda value: value * 2, [1, 2]) == [2, 4]

"""Tests for the bucketed histogram used by the Figure 4 experiment."""

import pytest

from repro.utils.histogram import Histogram, exponential_buckets


def test_exponential_buckets_match_paper_layout():
    buckets = exponential_buckets(255)
    assert buckets[:4] == [(1, 1), (2, 3), (4, 7), (8, 15)]
    assert buckets[-1] == (128, 255)


def test_exponential_buckets_reject_non_positive():
    with pytest.raises(ValueError):
        exponential_buckets(0)


def test_histogram_counts_values_into_buckets():
    histogram = Histogram.exponential(15)
    histogram.add_all([1, 2, 2, 5, 9, 15])
    assert histogram.as_dict() == {"[1,1]": 1, "[2,3]": 2, "[4,7]": 1, "[8,15]": 2}
    assert histogram.total == 6
    assert histogram.overflow == 0


def test_histogram_overflow():
    histogram = Histogram.exponential(7)
    histogram.add(100)
    assert histogram.overflow == 1
    assert histogram.total == 1


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([(2, 1)])
    with pytest.raises(ValueError):
        Histogram([(1, 3), (2, 5)])


def test_histogram_render_mentions_every_bucket():
    histogram = Histogram.exponential(7)
    histogram.add_all([1, 4, 4])
    rendered = histogram.render(width=10)
    assert "[1,1]" in rendered and "[4,7]" in rendered
    # The largest bucket gets the longest bar.
    lines = rendered.splitlines()
    assert lines[-1].count("#") >= lines[0].count("#")

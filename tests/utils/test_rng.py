"""Tests for the deterministic RNG helpers."""

import pytest

from repro.utils.rng import SeededRandom, derive_seed, round_robin


def test_same_seed_same_stream():
    first = SeededRandom(42)
    second = SeededRandom(42)
    assert [first.randint(0, 100) for _ in range(10)] == [second.randint(0, 100) for _ in range(10)]


def test_different_seeds_differ():
    first = [SeededRandom(1).randint(0, 1000) for _ in range(5)]
    second = [SeededRandom(2).randint(0, 1000) for _ in range(5)]
    assert first != second


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(7, "tree", 3) == derive_seed(7, "tree", 3)
    assert derive_seed(7, "tree", 3) != derive_seed(7, "tree", 4)
    assert derive_seed(7, "tree", 3) != derive_seed(8, "tree", 3)


def test_spawn_creates_independent_reproducible_children():
    parent = SeededRandom(99)
    child_a = parent.spawn("a")
    child_b = parent.spawn("b")
    assert child_a.seed != child_b.seed
    assert SeededRandom(99).spawn("a").randint(0, 10**6) == child_a.randint(0, 10**6)


def test_choice_rejects_empty_sequence():
    with pytest.raises(ValueError):
        SeededRandom(1).choice([])


def test_geometric_respects_bounds():
    rng = SeededRandom(5)
    values = [rng.geometric(0.4, 6) for _ in range(200)]
    assert all(1 <= value <= 6 for value in values)
    assert min(values) == 1  # the mode of a geometric distribution


def test_geometric_rejects_invalid_p():
    with pytest.raises(ValueError):
        SeededRandom(1).geometric(0.0, 5)


def test_partition_sums_to_total_with_positive_parts():
    rng = SeededRandom(3)
    parts = rng.partition(50, 7)
    assert sum(parts) == 50
    assert len(parts) == 7
    assert all(part >= 1 for part in parts)


def test_partition_single_part():
    assert SeededRandom(1).partition(9, 1) == [9]


def test_partition_rejects_impossible_split():
    with pytest.raises(ValueError):
        SeededRandom(1).partition(3, 5)


def test_shuffle_returns_permutation():
    rng = SeededRandom(11)
    items = list(range(20))
    shuffled = rng.shuffle(list(items))
    assert sorted(shuffled) == items


def test_round_robin_interleaves():
    assert round_robin([[1, 2, 3], ["a", "b"]]) == [1, "a", 2, "b", 3]

"""Tests for pre/post-order interval labels."""

import pytest

from repro.errors import LabelingError, UnknownNodeError
from repro.labeling.interval import IntervalLabeling
from repro.schema.tree import SchemaTree

LIB, BOOK, DATA, AUTHOR_NAME, SHELF, TITLE, ADDRESS = range(7)


def test_rejects_empty_tree():
    with pytest.raises(LabelingError):
        IntervalLabeling(SchemaTree("empty"))


def test_root_interval_contains_everything(library_tree):
    labels = IntervalLabeling(library_tree)
    root_start, root_end = labels.label(LIB)
    for node_id in library_tree.node_ids():
        start, end = labels.label(node_id)
        assert root_start <= start <= end <= root_end


def test_ancestor_queries_match_tree_definition(library_tree):
    labels = IntervalLabeling(library_tree)
    for ancestor in library_tree.node_ids():
        for descendant in library_tree.node_ids():
            expected = library_tree.is_ancestor(ancestor, descendant)
            assert labels.is_ancestor_or_self(ancestor, descendant) == expected


def test_strict_ancestor_excludes_self(library_tree):
    labels = IntervalLabeling(library_tree)
    assert not labels.is_ancestor(TITLE, TITLE)
    assert labels.is_ancestor(BOOK, TITLE)


def test_disjointness(library_tree):
    labels = IntervalLabeling(library_tree)
    assert labels.are_disjoint(TITLE, SHELF)
    assert labels.are_disjoint(ADDRESS, BOOK)
    assert not labels.are_disjoint(BOOK, AUTHOR_NAME)


def test_unknown_node_raises(library_tree):
    labels = IntervalLabeling(library_tree)
    with pytest.raises(UnknownNodeError):
        labels.label(99)

"""Tests for the Euler-tour / sparse-table distance oracles."""

import pytest

from repro.errors import LabelingError, UnknownNodeError
from repro.labeling.distance import RepositoryDistanceOracle, TreeDistanceOracle
from repro.schema.tree import SchemaTree

LIB, BOOK, DATA, AUTHOR_NAME, SHELF, TITLE, ADDRESS = range(7)


def test_rejects_empty_tree():
    with pytest.raises(LabelingError):
        TreeDistanceOracle(SchemaTree("empty"))


def test_oracle_distances_match_fig1_expectations(library_tree):
    oracle = TreeDistanceOracle(library_tree)
    assert oracle.distance(DATA, TITLE) == 2
    assert oracle.distance(AUTHOR_NAME, SHELF) == 2
    assert oracle.distance(AUTHOR_NAME, ADDRESS) == 4
    assert oracle.distance(LIB, AUTHOR_NAME) == 3
    assert oracle.distance(TITLE, TITLE) == 0


def test_oracle_matches_naive_distance_on_all_pairs(library_tree):
    oracle = TreeDistanceOracle(library_tree)
    for u in library_tree.node_ids():
        for v in library_tree.node_ids():
            assert oracle.distance(u, v) == library_tree.distance(u, v)
            assert oracle.lca(u, v) == library_tree.lowest_common_ancestor(u, v)


def test_oracle_path_edges_match_tree_path_edges(library_tree):
    oracle = TreeDistanceOracle(library_tree)
    for u in library_tree.node_ids():
        for v in library_tree.node_ids():
            assert oracle.path_edge_ids(u, v) == library_tree.path_edge_ids(u, v)


def test_unknown_node_raises(library_tree):
    oracle = TreeDistanceOracle(library_tree)
    with pytest.raises(UnknownNodeError):
        oracle.distance(0, 99)
    with pytest.raises(UnknownNodeError):
        oracle.distance(99, 99)


def test_repository_oracle_within_and_across_trees(small_repository):
    oracle = RepositoryDistanceOracle(small_repository)
    first_tree = small_repository.tree(0)
    a = small_repository.ref(0, 1)
    b = small_repository.ref(0, 5)
    assert oracle.distance(a, b) == first_tree.distance(1, 5)
    other = small_repository.ref(1, 0)
    assert oracle.distance(a, other) is None
    assert oracle.lca(a, other) is None
    assert oracle.path_edge_ids(a, other) is None


def test_repository_oracle_is_lazy(small_repository):
    oracle = RepositoryDistanceOracle(small_repository)
    assert oracle.built_oracle_count == 0
    oracle.distance(small_repository.ref(1, 0), small_repository.ref(1, 2))
    assert oracle.built_oracle_count == 1
    # Re-querying the same tree does not build a new oracle.
    oracle.distance(small_repository.ref(1, 1), small_repository.ref(1, 3))
    assert oracle.built_oracle_count == 1


def test_repository_oracle_lca_returns_ref(small_repository):
    oracle = RepositoryDistanceOracle(small_repository)
    a = small_repository.ref(0, 3)   # authorName
    b = small_repository.ref(0, 5)   # title
    lca = oracle.lca(a, b)
    assert lca is not None
    assert lca.tree_id == 0
    assert small_repository.node(lca).name == "book"

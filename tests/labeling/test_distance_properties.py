"""Property-based tests: the O(1) oracle agrees with the naive tree algorithms."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.labeling.distance import TreeDistanceOracle
from repro.labeling.interval import IntervalLabeling
from repro.schema.node import SchemaNode
from repro.schema.tree import SchemaTree


@st.composite
def random_trees(draw, max_nodes: int = 35) -> SchemaTree:
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    tree = SchemaTree(name="random")
    tree.add_root(SchemaNode(name="n0"))
    for index in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        tree.add_child(parent, SchemaNode(name=f"n{index}"))
    return tree


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_oracle_distance_equals_naive_distance(tree, data):
    oracle = TreeDistanceOracle(tree)
    node_ids = list(tree.node_ids())
    u = data.draw(st.sampled_from(node_ids))
    v = data.draw(st.sampled_from(node_ids))
    assert oracle.distance(u, v) == tree.distance(u, v)


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_oracle_lca_equals_naive_lca(tree, data):
    oracle = TreeDistanceOracle(tree)
    node_ids = list(tree.node_ids())
    u = data.draw(st.sampled_from(node_ids))
    v = data.draw(st.sampled_from(node_ids))
    assert oracle.lca(u, v) == tree.lowest_common_ancestor(u, v)


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_path_edges_size_equals_distance(tree, data):
    oracle = TreeDistanceOracle(tree)
    node_ids = list(tree.node_ids())
    u = data.draw(st.sampled_from(node_ids))
    v = data.draw(st.sampled_from(node_ids))
    edges = oracle.path_edge_ids(u, v)
    assert len(edges) == oracle.distance(u, v)
    assert edges == tree.path_edge_ids(u, v)


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_interval_labels_agree_with_ancestor_relation(tree, data):
    labels = IntervalLabeling(tree)
    node_ids = list(tree.node_ids())
    u = data.draw(st.sampled_from(node_ids))
    v = data.draw(st.sampled_from(node_ids))
    assert labels.is_ancestor_or_self(u, v) == tree.is_ancestor(u, v)

"""Tests for the sparse-table range-minimum-query structure."""

import pytest

from repro.errors import LabelingError
from repro.labeling.sparse_table import SparseTable


def test_rejects_empty_sequence():
    with pytest.raises(LabelingError):
        SparseTable([])


def test_single_element():
    table = SparseTable([7])
    assert table.minimum(0, 0) == 7
    assert table.argmin(0, 0) == 0


def test_minimum_over_full_range():
    values = [5, 3, 8, 1, 9, 2]
    table = SparseTable(values)
    assert table.minimum(0, 5) == 1
    assert table.argmin(0, 5) == 3


def test_minimum_over_sub_ranges_matches_builtin():
    values = [4, 2, 7, 2, 9, 0, 5, 3]
    table = SparseTable(values)
    for low in range(len(values)):
        for high in range(low, len(values)):
            assert table.minimum(low, high) == min(values[low : high + 1])


def test_argmin_points_at_a_minimum_value():
    values = [3, 1, 1, 4]
    table = SparseTable(values)
    index = table.argmin(0, 3)
    assert values[index] == 1


def test_swapped_bounds_are_normalized():
    table = SparseTable([5, 1, 2])
    assert table.minimum(2, 0) == 1


def test_out_of_bounds_raises():
    table = SparseTable([1, 2, 3])
    with pytest.raises(LabelingError):
        table.minimum(0, 3)
    with pytest.raises(LabelingError):
        table.minimum(-1, 2)

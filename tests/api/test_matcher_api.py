"""The Matcher protocol over every backend: bit-identity, validation, batching."""

import pytest

from repro.api import encode
from repro.api.envelope import PROTOCOL_VERSION, MatchOptions, MatchRequest
from repro.api.matcher import Matcher
from repro.errors import InvalidRequestError
from repro.service import MatchingService
from repro.system.bellflower import Bellflower
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

from _backends import small_repository_factory

QUERY_SCHEMAS = [paper_personal_schema, contact_personal_schema, book_personal_schema]


class TestProtocol:
    def test_every_backend_is_a_matcher(self, backend):
        assert isinstance(backend, Matcher)

    def test_describe_is_uniform(self, backend):
        card = backend.describe()
        assert card["backend"] == backend.backend_kind
        assert card["protocol_version"] == PROTOCOL_VERSION
        assert card["delta"] == 0.6
        assert card["element_threshold"] == 0.5
        assert card["executor"] == "serial"
        assert {"match", "match_many", "top_k", "stats", "describe"} <= set(card["capabilities"])
        assert card["repository"]["trees"] > 0
        assert card["repository"]["nodes"] > 0

    def test_stats_carry_backend_and_protocol_version(self, backend):
        stats = backend.stats()
        assert stats["backend"] == backend.backend_kind
        assert stats["protocol_version"] == PROTOCOL_VERSION
        assert stats["trees"] > 0

    def test_mutation_capability_matches_the_backend(self, backend):
        capabilities = set(backend.describe()["capabilities"])
        assert ("mutations" in capabilities) == hasattr(backend, "add_tree")


class TestBitIdentity:
    """Acceptance criterion: typed-envelope results ≡ legacy kwargs results."""

    @pytest.mark.parametrize("make_schema", QUERY_SCHEMAS, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("top_k", [None, 5])
    def test_new_api_matches_legacy_api(self, backend, make_schema, top_k):
        schema = make_schema()
        legacy = backend.match(schema, delta=0.6, top_k=top_k)
        response = backend.match(MatchRequest.from_schema(schema, delta=0.6, top_k=top_k))
        expected = tuple(
            encode.mapping_record(backend.repository, schema, mapping)
            for mapping in legacy.mappings
        )
        assert response.mappings == expected
        assert response.mapping_count == len(legacy.mappings)
        # Search-stage counters are identical; element-matching counters may
        # legitimately differ on the service backends (the typed run hits the
        # candidate cache the legacy run warmed — documented cache semantics).
        assert response.counters["mapping_elements"] == legacy.counters.get("mapping_elements")

    def test_nested_wire_schema_matches_in_memory_schema(self, backend):
        # The same query expressed as a nested wire spec and as a full tree
        # must produce the same ranking (the serve-protocol path vs the
        # library path).
        nested = MatchRequest(
            schema={"name": ["address", "email"]},
            options=MatchOptions(top_k=3),
        )
        typed = MatchRequest.from_schema(paper_personal_schema(), top_k=3)
        scores = [record.score for record in backend.match(typed).mappings]
        nested_scores = [record.score for record in backend.match(nested).mappings]
        assert nested_scores == scores


class TestTypedOptions:
    def test_pagination_slices_the_ranking(self, backend):
        schema = paper_personal_schema()
        full = backend.match(MatchRequest.from_schema(schema, top_k=5))
        page = backend.match(
            MatchRequest.from_schema(schema, top_k=5, offset=2, limit=2)
        )
        assert page.offset == 2
        assert page.mappings == full.mappings[2:4]
        assert page.mapping_count == full.mapping_count

    def test_explain_reports_cluster_statistics(self, backend):
        schema = paper_personal_schema()
        response = backend.match(MatchRequest.from_schema(schema, top_k=3, explain=True))
        assert response.explain is not None
        assert response.explain.useful_clusters == len(response.explain.clusters)
        assert response.explain.useful_clusters > 0
        assert response.explain.search_space >= response.explain.useful_clusters
        plain = backend.match(MatchRequest.from_schema(schema, top_k=3))
        assert plain.explain is None

    def test_extra_arguments_alongside_an_envelope_are_rejected(self, backend):
        request = MatchRequest.from_schema(paper_personal_schema())
        with pytest.raises(InvalidRequestError, match="extra arguments"):
            backend.match(request, delta=0.5)

    def test_mixed_typed_and_legacy_batches_are_rejected(self, backend):
        with pytest.raises(InvalidRequestError, match="cannot mix"):
            backend.match_many(
                [MatchRequest.from_schema(paper_personal_schema()), paper_personal_schema()]
            )


class TestUnifiedValidation:
    """One InvalidRequestError, raised at the boundary, on all three backends."""

    def test_zero_top_k_is_rejected(self, backend):
        with pytest.raises(InvalidRequestError, match="top_k must be at least 1"):
            backend.match(paper_personal_schema(), top_k=0)

    def test_out_of_range_delta_is_rejected(self, backend):
        with pytest.raises(InvalidRequestError, match="delta must be in"):
            backend.match(paper_personal_schema(), delta=1.5)

    def test_match_many_validates_too(self, backend):
        with pytest.raises(InvalidRequestError, match="top_k"):
            backend.match_many([paper_personal_schema()], top_k=-3)

    def test_typed_requests_validate_directly_constructed_options(self, backend):
        # from_wire validates on parse; direct construction must be caught at
        # execution time.
        request = MatchRequest(
            schema={"a": ["b"]}, options=MatchOptions(top_k=0)
        )
        with pytest.raises(InvalidRequestError, match="top_k"):
            backend.match(request)

    def test_service_rejects_before_touching_cache_or_counters(self):
        # Regression for the pre-unification ordering: MatchingService.match
        # computed its cache key (and only failed deep inside generation), so
        # an invalid request could bump counters.  Validation now precedes
        # every side effect.
        service = MatchingService(small_repository_factory(), element_threshold=0.5, delta=0.6)
        with pytest.raises(InvalidRequestError):
            service.match(paper_personal_schema(), top_k=0)
        assert service.counters.get("queries") == 0
        assert service.query_cache_len == 0


class TestMatchManyPromotion:
    """Fingerprint dedup + batching now works on the *unsharded* service."""

    def test_results_match_the_per_query_loop(self, backend):
        schemas = [paper_personal_schema(), book_personal_schema(), paper_personal_schema()]
        batched = backend.match_many(schemas, delta=0.6, top_k=3)
        singles = [backend.match(schema, delta=0.6, top_k=3) for schema in schemas]
        assert [result.ranking_key() for result in batched] == [
            result.ranking_key() for result in singles
        ]

    def test_duplicates_share_one_result_object(self, backend):
        schemas = [paper_personal_schema(), paper_personal_schema(), paper_personal_schema()]
        results = backend.match_many(schemas, top_k=2)
        assert results[0] is results[1] is results[2]

    def test_unsharded_service_counts_duplicates(self):
        service = MatchingService(small_repository_factory(), element_threshold=0.5, delta=0.6)
        schemas = [paper_personal_schema()] * 4 + [book_personal_schema()]
        service.match_many(schemas, top_k=2)
        assert service.counters.get("queries") == 5
        assert service.counters.get("duplicate_queries") == 3

    def test_empty_batch_returns_empty(self, backend):
        assert backend.match_many([]) == []

    def test_cache_size_zero_disables_dedup_on_the_service(self):
        # The documented escape hatch for custom property-reading matchers:
        # query_cache_size=0 must disable fingerprint trust everywhere,
        # including the whole-result batch dedup.
        service = MatchingService(
            small_repository_factory(), element_threshold=0.5, delta=0.6, query_cache_size=0
        )
        results = service.match_many([paper_personal_schema(), paper_personal_schema()])
        assert results[0] is not results[1]
        assert results[0].ranking_key() == results[1].ranking_key()
        assert service.counters.get("duplicate_queries") == 0

    def test_custom_matcher_disables_dedup_on_the_pipeline(self):
        from repro.matchers.name import FuzzyNameMatcher

        class PropertyReadingMatcher(FuzzyNameMatcher):
            pass

        system = Bellflower(
            small_repository_factory(),
            matcher=PropertyReadingMatcher(),
            element_threshold=0.5,
            delta=0.6,
        )
        results = system.match_many([paper_personal_schema(), paper_personal_schema()])
        assert results[0] is not results[1]
        assert results[0].ranking_key() == results[1].ranking_key()

    def test_typed_batch_deduplicates_equal_requests(self):
        service = MatchingService(small_repository_factory(), element_threshold=0.5, delta=0.6)
        request = MatchRequest.from_schema(paper_personal_schema(), top_k=2)
        responses = service.match_many([request, request, request])
        assert len(responses) == 3
        assert responses[0] == responses[1] == responses[2]
        assert service.counters.get("duplicate_queries") == 2

    def test_typed_batch_with_heterogeneous_options(self, backend):
        schema = paper_personal_schema()
        responses = backend.match_many(
            [
                MatchRequest.from_schema(schema, top_k=1),
                MatchRequest.from_schema(schema, top_k=5),
                MatchRequest.from_schema(schema, top_k=5, limit=1),
            ]
        )
        assert len(responses[0].mappings) <= 1
        assert responses[1].mapping_count >= responses[0].mapping_count
        # The limited response pages the same ranking the unlimited one saw.
        assert responses[2].mappings == responses[1].mappings[:1]
        assert responses[2].mapping_count == responses[1].mapping_count

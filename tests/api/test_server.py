"""The asyncio JSONL TCP server: concurrency, isolation, clean shutdown."""

import asyncio
import json

import pytest

from _backends import small_repository_factory
from repro.api.envelope import PROTOCOL_VERSION, MatchRequest, MatchOptions
from repro.api.server import MatcherServer
from repro.service import MatchingService
from repro.shard import ShardedMatchingService

CLIENTS = 8


def make_service():
    return MatchingService(small_repository_factory(), element_threshold=0.5, delta=0.6)


async def read_json(reader):
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


async def send_json(writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()


class TestConcurrentClients:
    def test_eight_clients_with_interleaved_queries_mutations_and_garbage(self):
        """Acceptance criterion: >= 8 concurrent clients, no dropped or
        interleaved responses, queries racing mutations, malformed lines."""

        async def client(port, index):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            ready = await read_json(reader)
            assert ready["kind"] == "ready" and ready["ready"] is True

            # 1: v1 typed query
            await send_json(
                writer,
                MatchRequest(
                    schema={"person": ["name", "email"]},
                    options=MatchOptions(top_k=2, explain=True),
                ).to_wire(),
            )
            # 2: legacy query
            await send_json(writer, {"personal": {"book": ["title"]}, "top": 2})
            # 3: malformed line
            writer.write(b"this is not json\n")
            await writer.drain()
            # 4: mutation — each client adds a uniquely named tree
            await send_json(
                writer,
                {
                    "v": 1,
                    "kind": "mutation",
                    "action": "add",
                    "schema": {f"zclient{index}": ["zz"]},
                    "name": f"client-{index}",
                },
            )
            # 5: stats while other clients query/mutate
            await send_json(writer, {"v": 1, "kind": "stats"})
            # 6: remove the tree again, by stable name (ids shift under us)
            await send_json(
                writer,
                {"v": 1, "kind": "mutation", "action": "remove", "tree_name": f"client-{index}"},
            )

            responses = [await read_json(reader) for _ in range(6)]
            writer.close()
            await writer.wait_closed()

            # Responses arrive strictly in request order, envelope per request.
            assert responses[0]["kind"] == "match_response"
            assert responses[0]["explain"]["useful_clusters"] >= 1
            assert "mappings" in responses[1] and "v" not in responses[1]
            assert "error" in responses[2]
            assert responses[3]["kind"] == "mutation_response"
            assert responses[3]["tree_name"] == f"client-{index}"
            assert responses[4]["kind"] == "stats_response"
            assert responses[4]["stats"]["backend"] == "service"
            assert responses[5]["kind"] == "mutation_response"
            assert responses[5]["tree_name"] == f"client-{index}"
            return index

        async def main():
            service = make_service()
            server = MatcherServer(service, port=0, max_in_flight=CLIENTS)
            await server.start()
            try:
                done = await asyncio.gather(*[client(server.port, i) for i in range(CLIENTS)])
            finally:
                await server.stop()
            assert sorted(done) == list(range(CLIENTS))
            # Every add was matched by a remove: repository back to seed size.
            assert service.repository.tree_count == 3

        asyncio.run(main())

    def test_sharded_backend_serves_the_same_protocol(self, synthetic_repository):
        async def main():
            service = ShardedMatchingService.from_repository(
                synthetic_repository, 2, element_threshold=0.5, delta=0.6
            )
            server = MatcherServer(service, port=0, max_in_flight=4)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                ready = await read_json(reader)
                assert ready["backend"] == "sharded"
                await send_json(
                    writer,
                    MatchRequest(schema={"name": ["address", "email"]},
                                 options=MatchOptions(top_k=3)).to_wire(),
                )
                response = await read_json(reader)
                assert response["kind"] == "match_response"
                assert response["mapping_count"] >= 1
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(main())


class TestLifecycle:
    def test_stop_with_an_idle_client_shuts_down_without_burning_the_drain_window(self):
        import time

        async def main():
            server = MatcherServer(make_service(), port=0)
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await read_json(reader)  # ready; then go idle without closing
            start = time.perf_counter()
            await server.stop(drain_timeout=30.0)
            elapsed = time.perf_counter() - start
            # Idle connections are woken by the stop event immediately — the
            # drain timeout is only for requests actually executing.
            assert elapsed < 5.0
            assert await reader.readline() == b""  # server closed the socket
            writer.close()

        asyncio.run(main())

    def test_stop_drains_an_in_flight_request_to_completion(self):
        import threading
        import time

        started = threading.Event()

        class SlowService(MatchingService):
            def _match_schema(self, *args, **kwargs):
                started.set()
                time.sleep(0.3)  # keep the request in flight while stop() runs
                return super()._match_schema(*args, **kwargs)

        async def main():
            service = SlowService(small_repository_factory(), element_threshold=0.5, delta=0.6)
            server = MatcherServer(service, port=0)
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            await read_json(reader)
            await send_json(writer, {"personal": {"person": ["name"]}, "top": 1})
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, started.wait, 5)
            # Shut down while the request is executing: the drain window must
            # let it finish and its response reach the client before close.
            stop_task = asyncio.ensure_future(server.stop(drain_timeout=10.0))
            response = await read_json(reader)
            assert "mappings" in response
            await stop_task
            assert await reader.readline() == b""
            writer.close()

        asyncio.run(main())

    def test_a_stopped_server_can_be_started_again(self):
        async def main():
            server = MatcherServer(make_service(), port=0)
            await server.start()
            await server.stop()
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                await read_json(reader)
                await send_json(writer, {"personal": {"person": ["name"]}, "top": 1})
                response = await read_json(reader)
                assert "mappings" in response  # requests are answered, not dropped
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_connections_after_stop_are_refused(self):
        async def main():
            server = MatcherServer(make_service(), port=0)
            await server.start()
            port = server.port
            await server.stop()
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        asyncio.run(main())

    def test_oversized_request_line_is_rejected_and_the_connection_survives(self):
        async def main():
            server = MatcherServer(make_service(), port=0, max_line_bytes=1024)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                await read_json(reader)
                writer.write(b'{"personal": {"' + b"x" * 4096 + b'": []}}\n')
                await writer.drain()
                response = await read_json(reader)
                assert response["kind"] == "error"
                assert "exceeds" in response["error"]
                # The server resynchronizes on the line terminator: the same
                # connection keeps answering well-formed requests.
                await send_json(writer, {"personal": {"person": ["name"]}, "top": 1})
                follow_up = await read_json(reader)
                assert "mappings" in follow_up
                writer.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_oversized_line_followed_by_eof_closes_the_connection(self):
        async def main():
            server = MatcherServer(make_service(), port=0, max_line_bytes=1024)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                await read_json(reader)
                writer.write(b"y" * 4096)  # oversized AND unterminated
                await writer.drain()
                writer.write_eof()
                response = await read_json(reader)
                assert response["kind"] == "error"
                assert await reader.readline() == b""  # server closed cleanly
                writer.close()
            finally:
                await server.stop()

        asyncio.run(main())

    def test_ready_envelope_names_the_backend_and_protocol(self):
        async def main():
            server = MatcherServer(make_service(), port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                ready = await read_json(reader)
                assert ready["v"] == PROTOCOL_VERSION
                assert ready["protocol_version"] == PROTOCOL_VERSION
                assert ready["backend"] == "service"
                assert ready["trees"] == 3
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        asyncio.run(main())

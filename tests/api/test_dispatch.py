"""The shared request dispatcher: v1 envelopes, legacy dialect, mutations."""

import json

import pytest

from _backends import small_repository_factory
from repro.api.dispatch import RequestDispatcher, ServeDefaults
from repro.api.envelope import (
    DEPRECATED_TOP_WARNING,
    PROTOCOL_VERSION,
    BatchRequest,
    MatchRequest,
    StatsRequest,
)
from repro.service import MatchingService
from repro.system.bellflower import Bellflower


@pytest.fixture
def service():
    return MatchingService(small_repository_factory(), element_threshold=0.5, delta=0.6)


@pytest.fixture
def dispatcher(service):
    return RequestDispatcher(service, ServeDefaults(top=10, top_k=None))


class TestV1Match:
    def test_match_request_round_trips_through_the_dispatcher(self, dispatcher):
        request = MatchRequest(schema={"person": ["name", "email"]})
        response = dispatcher.handle_request(request.to_wire())
        assert response["v"] == PROTOCOL_VERSION
        assert response["kind"] == "match_response"
        assert response["mapping_count"] >= 1
        assert response["mappings"][0]["tree"] == "people"
        assert response["mappings"][0]["assignment"]

    def test_batch_request_answers_in_request_order(self, dispatcher):
        batch = BatchRequest(
            requests=(
                MatchRequest(schema={"person": ["name"]}),
                MatchRequest(schema={"book": ["title"]}),
            )
        )
        response = dispatcher.handle_request(batch.to_wire())
        assert response["kind"] == "batch_response"
        assert response["queries"] == 2
        assert response["results"][0]["mappings"][0]["tree"] == "people"
        assert response["results"][1]["mappings"][0]["tree"] == "books"

    def test_deprecated_top_alias_maps_through_with_a_warning(self, dispatcher):
        wire = MatchRequest(schema={"person": ["name"]}).to_wire()
        wire["options"] = {"top": 1}
        response = dispatcher.handle_request(wire)
        assert response["kind"] == "match_response"
        assert len(response["mappings"]) <= 1
        assert response["warnings"] == [DEPRECATED_TOP_WARNING]

    def test_v1_errors_are_v1_envelopes(self, dispatcher):
        response = dispatcher.handle_request(
            {"v": PROTOCOL_VERSION, "kind": "match", "schema": {}}
        )
        assert response["kind"] == "error"
        assert response["v"] == PROTOCOL_VERSION
        assert "non-empty 'schema'" in response["error"]

    def test_version_mismatch_is_a_clean_v1_error(self, dispatcher):
        response = dispatcher.handle_request({"v": 99, "kind": "match"})
        assert response["kind"] == "error"
        assert "unsupported protocol version" in response["error"]


class TestV1Stats:
    def test_stats_request_returns_the_uniform_dict(self, dispatcher):
        response = dispatcher.handle_request(StatsRequest().to_wire())
        assert response["kind"] == "stats_response"
        assert response["stats"]["backend"] == "service"
        assert response["stats"]["protocol_version"] == PROTOCOL_VERSION

    def test_describe_request_returns_the_capability_card(self, dispatcher):
        response = dispatcher.handle_request(StatsRequest(describe=True).to_wire())
        card = response["stats"]
        assert card["backend"] == "service"
        assert "match_many" in card["capabilities"]

    def test_legacy_stats_surfaces_the_same_enriched_dict(self, dispatcher):
        legacy = dispatcher.handle_request({"stats": True})
        assert legacy["stats"]["backend"] == "service"
        assert legacy["stats"]["protocol_version"] == PROTOCOL_VERSION


class TestV1Mutations:
    def test_add_returns_stable_name_alongside_positional_id(self, dispatcher):
        response = dispatcher.handle_request(
            {
                "v": PROTOCOL_VERSION,
                "kind": "mutation",
                "action": "add",
                "schema": {"zqx": ["zz"]},
                "name": "fresh-tree",
            }
        )
        assert response["kind"] == "mutation_response"
        assert response["ok"] is True
        assert response["tree_id"] == 3
        assert response["tree_name"] == "fresh-tree"
        assert response["trees"] == 4

    def test_add_without_name_gets_a_generated_one(self, dispatcher):
        response = dispatcher.handle_request(
            {"v": PROTOCOL_VERSION, "kind": "mutation", "action": "add", "schema": {"zqx": []}}
        )
        assert response["tree_name"] == "added-1"

    def test_remove_by_stable_name(self, dispatcher):
        response = dispatcher.handle_request(
            {"v": PROTOCOL_VERSION, "kind": "mutation", "action": "remove", "tree_name": "books"}
        )
        assert response["ok"] is True
        assert response["tree_name"] == "books"
        assert response["tree_id"] == 1
        assert response["trees"] == 2

    def test_remove_by_unknown_name_is_a_clean_error(self, dispatcher):
        response = dispatcher.handle_request(
            {"v": PROTOCOL_VERSION, "kind": "mutation", "action": "remove", "tree_name": "nope"}
        )
        assert response["kind"] == "error"
        assert "no tree named" in response["error"]

    def test_remove_by_ambiguous_name_is_a_clean_error(self, dispatcher):
        dispatcher.handle_request(
            {"v": 1, "kind": "mutation", "action": "add", "schema": {"a": []}, "name": "dup"}
        )
        dispatcher.handle_request(
            {"v": 1, "kind": "mutation", "action": "add", "schema": {"b": []}, "name": "dup"}
        )
        response = dispatcher.handle_request(
            {"v": 1, "kind": "mutation", "action": "remove", "tree_name": "dup"}
        )
        assert response["kind"] == "error"
        assert "ambiguous" in response["error"]

    def test_mutations_against_a_stateless_backend_are_rejected(self):
        dispatcher = RequestDispatcher(
            Bellflower(small_repository_factory(), element_threshold=0.5, delta=0.6)
        )
        response = dispatcher.handle_request(
            {"v": 1, "kind": "mutation", "action": "add", "schema": {"a": []}}
        )
        assert response["kind"] == "error"
        assert "does not support mutations" in response["error"]


class TestLegacyDialect:
    """The pre-PR serve protocol keeps working bit-for-bit (plus name fields)."""

    def test_legacy_add_and_remove_report_names_and_ids(self, dispatcher):
        added = dispatcher.handle_request({"add": {"zqx": ["zz"]}, "name": "legacy-tree"})
        assert added["ok"] is True
        assert added["tree_id"] == 3
        assert added["name"] == "legacy-tree"
        assert added["trees"] == 4
        removed = dispatcher.handle_request({"remove": 3})
        assert removed["ok"] is True
        assert removed["removed"] == "legacy-tree"
        assert removed["tree_id"] == 3
        assert removed["trees"] == 3

    def test_legacy_top_still_trims_the_printed_list_only(self, dispatcher):
        response = dispatcher.handle_request(
            {"personal": {"person": ["name", "email"]}, "top": 1}
        )
        assert len(response["mappings"]) <= 1
        assert response["mapping_count"] >= len(response["mappings"])

    def test_mutation_is_not_starved_by_a_sustained_query_stream(self, dispatcher):
        # Writer preference: with queries continuously holding the read lock
        # from several threads, an add must still get through promptly.
        import threading

        stop = threading.Event()

        def query_forever():
            while not stop.is_set():
                dispatcher.handle_request({"personal": {"person": ["name"]}, "top": 1})

        readers = [threading.Thread(target=query_forever) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            done = threading.Event()
            result = {}

            def mutate():
                result["response"] = dispatcher.handle_request(
                    {"add": {"zqx": ["zz"]}, "name": "under-load"}
                )
                done.set()

            threading.Thread(target=mutate).start()
            assert done.wait(timeout=30), "mutation starved by the query stream"
            assert result["response"]["ok"] is True
        finally:
            stop.set()
            for thread in readers:
                thread.join()

    def test_handle_line_survives_garbage(self, dispatcher):
        assert "error" in dispatcher.handle_line("not json at all")
        assert "must be a JSON object" in dispatcher.handle_line("[1, 2]")["error"]
        response = dispatcher.handle_line(json.dumps({"personal": {"person": ["name"]}}))
        assert "mappings" in response


class TestDeadlinesAndResultFlags:
    def test_legacy_timeout_ms_is_accepted_and_harmless_when_generous(self, dispatcher):
        response = dispatcher.handle_request(
            {"personal": {"person": ["name"]}, "top": 1, "timeout_ms": 3_600_000}
        )
        assert "mappings" in response
        # A deadline that never fires leaves the response unmarked.
        assert "partial" not in response and "degraded" not in response

    @pytest.mark.parametrize("bad", [0, -5, "soon", True])
    def test_legacy_invalid_timeout_ms_is_a_clean_error(self, dispatcher, bad):
        response = dispatcher.handle_request(
            {"personal": {"person": ["name"]}, "timeout_ms": bad}
        )
        assert "timeout_ms" in response["error"]

    def test_serve_default_timeout_applies_when_the_request_has_none(self, service):
        dispatcher = RequestDispatcher(service, ServeDefaults(timeout_ms=3_600_000))
        response = dispatcher.handle_request({"personal": {"person": ["name"]}, "top": 1})
        assert "mappings" in response and "partial" not in response

    def test_partial_and_degraded_flags_surface_in_both_dialects(self):
        import dataclasses

        class FlaggedService(MatchingService):
            """Stands in for a backend that truncated and degraded the answer."""

            def _match_schema(self, *args, **kwargs):
                result = super()._match_schema(*args, **kwargs)
                return dataclasses.replace(
                    result, partial=True, degraded=True, skipped_shards=(1,)
                )

        flagged = RequestDispatcher(
            FlaggedService(small_repository_factory(), element_threshold=0.5, delta=0.6)
        )
        legacy = flagged.handle_request({"personal": {"person": ["name"]}, "top": 1})
        assert legacy["partial"] is True
        assert legacy["degraded"] is True
        assert legacy["skipped_shards"] == [1]
        typed = flagged.handle_request(MatchRequest(schema={"person": ["name"]}).to_wire())
        assert typed["kind"] == "match_response"
        assert typed["partial"] is True
        assert typed["degraded"] is True
        assert typed["skipped_shards"] == [1]

"""Shared backends for the API-layer tests.

One module-scoped trio of backends (pipeline, service, sharded) over the
session's synthetic repository for read-only query tests; the mutation and
server tests build small private repositories via ``_backends`` instead.
"""

import pytest

from _backends import BACKEND_KINDS, build_backend


@pytest.fixture(scope="module", params=BACKEND_KINDS)
def backend(request, synthetic_repository):
    """Each Matcher backend over the shared read-only synthetic repository."""
    return build_backend(request.param, synthetic_repository)

"""Backend constructors shared by the API tests (imported, not fixtures)."""

from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository
from repro.service import MatchingService
from repro.shard import ShardedMatchingService
from repro.system.bellflower import Bellflower

#: Every Matcher implementation under test.
BACKEND_KINDS = ("bellflower", "service", "sharded")


def build_backend(kind, repository):
    if kind == "bellflower":
        return Bellflower(repository, element_threshold=0.5, delta=0.6)
    if kind == "service":
        return MatchingService(repository, element_threshold=0.5, delta=0.6)
    assert kind == "sharded"
    return ShardedMatchingService.from_repository(
        repository, 3, element_threshold=0.5, delta=0.6
    )


def small_repository_factory():
    """A fresh three-tree repository cheap enough for mutation/server tests."""
    repository = SchemaRepository(name="api-test")
    for name, spec in (
        ("people", {"person": ["name", "email", "address"]}),
        ("books", {"book": ["title", "author"]}),
        ("orders", {"order": ["item", "price"]}),
    ):
        repository.add_tree(TreeBuilder.from_nested(spec, name=name))
    return repository

"""Envelope codec properties: round-trip, tolerance, version policy."""

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.envelope import (
    DEPRECATED_TOP_IGNORED_WARNING,
    DEPRECATED_TOP_WARNING,
    PROTOCOL_VERSION,
    AssignmentEntry,
    BatchRequest,
    BatchResponse,
    ClusterStat,
    ErrorResponse,
    ExplainReport,
    MappingRecord,
    MatchOptions,
    MatchRequest,
    MatchResponse,
    MutationRequest,
    MutationResponse,
    StatsRequest,
    StatsResponse,
    parse_request,
)
from repro.errors import InvalidRequestError

# -- strategies ---------------------------------------------------------------

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
deltas = st.one_of(st.none(), scores)
top_ks = st.one_of(st.none(), st.integers(min_value=1, max_value=50))

nested_schemas = st.builds(
    lambda root, children: {root: children},
    names,
    st.lists(names, min_size=0, max_size=4),
)

options_st = st.builds(
    MatchOptions,
    delta=deltas,
    top_k=top_ks,
    explain=st.booleans(),
    offset=st.integers(min_value=0, max_value=5),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
)

match_requests = st.builds(
    MatchRequest,
    schema=nested_schemas,
    schema_format=st.just("nested"),
    name=names,
    options=options_st,
)

assignment_entries = st.builds(
    AssignmentEntry, personal=names, repository=names, similarity=scores
)

mapping_records = st.builds(
    MappingRecord,
    score=scores,
    tree=names,
    tree_id=st.integers(min_value=0, max_value=100),
    assignment=st.tuples(assignment_entries),
)

cluster_stats = st.builds(
    ClusterStat,
    cluster_id=st.integers(min_value=0, max_value=50),
    tree_id=st.integers(min_value=0, max_value=50),
    member_count=st.integers(min_value=0, max_value=50),
    mapping_element_count=st.integers(min_value=0, max_value=50),
    search_space=st.integers(min_value=0, max_value=10**6),
)

explain_reports = st.builds(
    ExplainReport,
    useful_clusters=st.integers(min_value=0, max_value=50),
    search_space=st.integers(min_value=0, max_value=10**6),
    partial_mappings=st.integers(min_value=0, max_value=10**6),
    clusters=st.tuples(cluster_stats),
)

match_responses = st.builds(
    MatchResponse,
    mappings=st.tuples(mapping_records),
    mapping_count=st.integers(min_value=0, max_value=100),
    offset=st.integers(min_value=0, max_value=5),
    counters=st.dictionaries(names, st.integers(min_value=0, max_value=1000), max_size=3),
    timings=st.dictionaries(names, scores, max_size=3),
    explain=st.one_of(st.none(), explain_reports),
    warnings=st.tuples(names),
)

mutation_requests = st.one_of(
    st.builds(
        lambda schema, name: MutationRequest(action="add", schema=schema, name=name),
        nested_schemas,
        st.one_of(st.none(), names),
    ),
    st.builds(
        lambda tree_id: MutationRequest(action="remove", tree_id=tree_id),
        st.integers(min_value=0, max_value=100),
    ),
    st.builds(
        lambda tree_name: MutationRequest(action="remove", tree_name=tree_name), names
    ),
)

mutation_responses = st.builds(
    MutationResponse,
    ok=st.booleans(),
    action=st.sampled_from(["add", "remove"]),
    tree_id=st.integers(min_value=0, max_value=100),
    tree_name=names,
    trees=st.integers(min_value=1, max_value=100),
    warnings=st.tuples(names),
)

stats_requests = st.builds(StatsRequest, describe=st.booleans())
stats_responses = st.builds(
    StatsResponse,
    stats=st.dictionaries(names, st.one_of(st.integers(), names, st.booleans()), max_size=4),
)
error_responses = st.builds(
    ErrorResponse,
    error=names,
    error_type=st.one_of(st.none(), names),
    warnings=st.tuples(names),
)
batch_requests = st.builds(
    BatchRequest, requests=st.tuples(match_requests, match_requests)
)
batch_responses = st.builds(
    BatchResponse, results=st.tuples(match_responses)
)

ALL_CODECS = [
    (MatchOptions, options_st),
    (MatchRequest, match_requests),
    (AssignmentEntry, assignment_entries),
    (MappingRecord, mapping_records),
    (ClusterStat, cluster_stats),
    (ExplainReport, explain_reports),
    (MatchResponse, match_responses),
    (BatchRequest, batch_requests),
    (BatchResponse, batch_responses),
    (MutationRequest, mutation_requests),
    (MutationResponse, mutation_responses),
    (StatsRequest, stats_requests),
    (StatsResponse, stats_responses),
    (ErrorResponse, error_responses),
]

_ENVELOPES = st.one_of(*(strategy for _cls, strategy in ALL_CODECS))


class TestRoundTrip:
    """``from_wire(to_wire(x)) == x`` for every envelope codec."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    @pytest.mark.parametrize("cls,strategy", ALL_CODECS, ids=lambda c: getattr(c, "__name__", ""))
    def test_round_trip(self, cls, strategy, data):
        envelope = data.draw(strategy)
        assert cls.from_wire(envelope.to_wire()) == envelope

    @settings(max_examples=40, deadline=None)
    @given(envelope=_ENVELOPES)
    def test_wire_form_is_json_serializable(self, envelope):
        parsed = json.loads(json.dumps(envelope.to_wire()))
        assert type(envelope).from_wire(parsed) == envelope

    @settings(max_examples=40, deadline=None)
    @given(envelope=_ENVELOPES)
    def test_unknown_fields_are_tolerated(self, envelope):
        wire = envelope.to_wire()
        wire["zz_future_field"] = {"anything": [1, 2, 3]}
        assert type(envelope).from_wire(wire) == envelope


class TestVersionPolicy:
    TOP_LEVEL = [
        MatchRequest,
        MatchResponse,
        BatchRequest,
        BatchResponse,
        MutationRequest,
        MutationResponse,
        StatsRequest,
        StatsResponse,
        ErrorResponse,
    ]

    @pytest.mark.parametrize("cls", TOP_LEVEL, ids=lambda c: c.__name__)
    def test_version_mismatch_is_rejected(self, cls):
        wire = {"v": PROTOCOL_VERSION + 1, "kind": cls.kind}
        with pytest.raises(InvalidRequestError, match="unsupported protocol version"):
            cls.from_wire(wire)

    @pytest.mark.parametrize("cls", TOP_LEVEL, ids=lambda c: c.__name__)
    def test_missing_version_is_rejected(self, cls):
        with pytest.raises(InvalidRequestError, match="unsupported protocol version"):
            cls.from_wire({"kind": cls.kind})

    @pytest.mark.parametrize("version", [True, 1.0, "1"])
    def test_version_must_be_the_integer_one(self, version):
        # True and 1.0 compare equal to 1 in Python; the wire check is typed.
        with pytest.raises(InvalidRequestError, match="unsupported protocol version"):
            StatsRequest.from_wire({"v": version, "kind": "stats"})

    def test_kind_mismatch_is_rejected(self):
        wire = MatchRequest(schema={"a": []}).to_wire()
        wire["kind"] = "mutation_response"
        with pytest.raises(InvalidRequestError, match="expected a 'match' envelope"):
            MatchRequest.from_wire(wire)

    def test_parse_request_rejects_unknown_kind(self):
        with pytest.raises(InvalidRequestError, match="unknown request kind"):
            parse_request({"v": PROTOCOL_VERSION, "kind": "frobnicate"})

    def test_parse_request_dispatches_by_kind(self):
        request = MatchRequest(schema={"a": ["b"]})
        assert parse_request(request.to_wire()) == request
        stats = StatsRequest(describe=True)
        assert parse_request(stats.to_wire()) == stats


class TestDeprecatedTopAlias:
    def test_top_maps_to_top_k_with_a_warning(self):
        wire = MatchRequest(schema={"a": ["b"]}).to_wire()
        wire["options"] = {"top": 3}
        request = MatchRequest.from_wire(wire)
        assert request.options.top_k == 3
        assert request.warnings == (DEPRECATED_TOP_WARNING,)

    def test_explicit_top_k_wins_over_the_alias_but_still_warns(self):
        wire = MatchRequest(schema={"a": ["b"]}).to_wire()
        wire["options"] = {"top": 3, "top_k": 7}
        request = MatchRequest.from_wire(wire)
        assert request.options.top_k == 7
        assert request.warnings == (DEPRECATED_TOP_IGNORED_WARNING,)

    def test_warnings_do_not_break_equality(self):
        wire = MatchRequest(schema={"a": ["b"]}).to_wire()
        wire["options"] = {"top": 3}
        with_alias = MatchRequest.from_wire(wire)
        assert with_alias == MatchRequest(
            schema={"a": ["b"]}, options=MatchOptions(top_k=3)
        )


class TestRequestValidation:
    def test_invalid_delta_in_options_is_rejected(self):
        wire = MatchRequest(schema={"a": []}).to_wire()
        wire["options"] = {"delta": 1.5}
        with pytest.raises(InvalidRequestError, match="delta must be"):
            MatchRequest.from_wire(wire)

    def test_invalid_top_k_in_options_is_rejected(self):
        wire = MatchRequest(schema={"a": []}).to_wire()
        wire["options"] = {"top_k": 0}
        with pytest.raises(InvalidRequestError, match="top_k must be"):
            MatchRequest.from_wire(wire)

    def test_empty_schema_is_rejected(self):
        wire = MatchRequest(schema={"a": []}).to_wire()
        wire["schema"] = {}
        with pytest.raises(InvalidRequestError, match="non-empty 'schema'"):
            MatchRequest.from_wire(wire)

    def test_unknown_schema_format_is_rejected(self):
        wire = MatchRequest(schema={"a": []}).to_wire()
        wire["schema_format"] = "yaml"
        with pytest.raises(InvalidRequestError, match="schema_format"):
            MatchRequest.from_wire(wire)

    def test_mutation_requires_a_known_action(self):
        with pytest.raises(InvalidRequestError, match="'add' or 'remove'"):
            MutationRequest(action="rename").validate()

    def test_remove_requires_exactly_one_target(self):
        with pytest.raises(InvalidRequestError, match="exactly one"):
            MutationRequest(action="remove").validate()
        with pytest.raises(InvalidRequestError, match="exactly one"):
            MutationRequest(action="remove", tree_id=1, tree_name="x").validate()

    def test_batch_requires_requests(self):
        with pytest.raises(InvalidRequestError, match="non-empty 'requests'"):
            BatchRequest.from_wire({"v": PROTOCOL_VERSION, "kind": "batch", "requests": []})


class TestSchemaFormats:
    def test_nested_schema_builds_a_tree(self):
        request = MatchRequest(schema={"book": ["title", "author"]}, name="lib")
        tree = request.build_schema()
        assert tree.name == "lib"
        assert sorted(tree.names()) == ["author", "book", "title"]

    def test_tree_format_round_trips_full_fidelity(self, book_schema):
        request = MatchRequest.from_schema(book_schema, top_k=2)
        rebuilt = MatchRequest.from_wire(request.to_wire()).build_schema()
        assert rebuilt.name == book_schema.name
        assert rebuilt.node_count == book_schema.node_count
        for node_id in book_schema.node_ids():
            assert rebuilt.node(node_id).name == book_schema.node(node_id).name
            assert rebuilt.node(node_id).datatype == book_schema.node(node_id).datatype

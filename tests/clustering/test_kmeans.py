"""Tests for the adapted k-means clusterer and the baseline clusterers."""

import pytest

from repro.clustering.baselines import FragmentClusterer, TreeClusterer
from repro.clustering.convergence import RelaxedConvergence, TotalStability
from repro.clustering.initialization import MEminInitializer
from repro.clustering.kmeans import KMeansClusterer
from repro.clustering.quality import cluster_quality, order_clusters_by_quality
from repro.clustering.reclustering import JoinReclustering, NoReclustering, join_and_remove
from repro.errors import ClusteringError
from repro.matchers.selection import MappingElementSets
from repro.objective.bellflower import BellflowerObjective


def assert_valid_partition(clustering, candidates):
    """Clusters are disjoint, non-empty, tree-consistent, and cover a subset of the elements."""
    seen = set()
    element_ids = {element.ref.global_id for element in candidates.all_elements()}
    for cluster in clustering.clusters:
        assert cluster.size > 0
        assert cluster.centroid is not None
        assert cluster.centroid.tree_id == cluster.tree_id
        for member in cluster.members:
            assert member.tree_id == cluster.tree_id
            assert member.global_id in element_ids
            assert member.global_id not in seen
            seen.add(member.global_id)


class TestKMeansClusterer:
    def test_produces_valid_partition(self, small_candidates, small_repository):
        clusterer = KMeansClusterer()
        clustering = clusterer.cluster(small_candidates, small_repository)
        assert_valid_partition(clustering, small_candidates)
        assert clustering.iterations >= 1
        assert clustering.counters["clustered_items"] == len(
            {e.ref.global_id for e in small_candidates.all_elements()}
        )

    def test_clusters_never_span_trees(self, synthetic_candidates, synthetic_repository):
        clusterer = KMeansClusterer(reclustering=join_and_remove(3.0))
        clustering = clusterer.cluster(synthetic_candidates, synthetic_repository)
        assert_valid_partition(clustering, synthetic_candidates)

    def test_deterministic(self, synthetic_candidates, synthetic_repository):
        first = KMeansClusterer().cluster(synthetic_candidates, synthetic_repository)
        second = KMeansClusterer().cluster(synthetic_candidates, synthetic_repository)
        assert first.clusters.assignment() == second.clusters.assignment()

    def test_join_threshold_controls_cluster_count(self, synthetic_candidates, synthetic_repository):
        def count(threshold):
            clusterer = KMeansClusterer(reclustering=JoinReclustering(distance_threshold=threshold))
            return clusterer.cluster(synthetic_candidates, synthetic_repository).cluster_count

        assert count(4.0) <= count(2.0)

    def test_reclustering_reduces_tiny_clusters(self, synthetic_candidates, synthetic_repository):
        no_reclustering = KMeansClusterer(reclustering=NoReclustering()).cluster(
            synthetic_candidates, synthetic_repository
        )
        joined = KMeansClusterer(reclustering=join_and_remove(3.0, min_size=2)).cluster(
            synthetic_candidates, synthetic_repository
        )
        tiny_before = sum(1 for size in no_reclustering.clusters.sizes() if size == 1)
        tiny_after = sum(1 for size in joined.clusters.sizes() if size == 1)
        assert tiny_after <= tiny_before
        assert joined.cluster_count <= no_reclustering.cluster_count

    def test_total_stability_converges(self, small_candidates, small_repository):
        clusterer = KMeansClusterer(convergence=TotalStability(max_iterations=30))
        clustering = clusterer.cluster(small_candidates, small_repository)
        assert clustering.iterations <= 30
        assert_valid_partition(clustering, small_candidates)

    def test_empty_candidates_rejected(self, small_repository):
        empty = MappingElementSets([0, 1, 2])
        with pytest.raises(ClusteringError):
            KMeansClusterer().cluster(empty, small_repository)


class TestTreeClusterer:
    def test_one_cluster_per_tree_with_elements(self, small_candidates, small_repository):
        clustering = TreeClusterer().cluster(small_candidates, small_repository)
        trees_with_elements = {e.ref.tree_id for e in small_candidates.all_elements()}
        assert clustering.cluster_count == len(trees_with_elements)
        assert {c.tree_id for c in clustering.clusters} == trees_with_elements
        # Every mapping element is covered: nothing is lost in the baseline.
        covered = set()
        for cluster in clustering.clusters:
            covered |= cluster.member_global_ids()
        assert covered == {e.ref.global_id for e in small_candidates.all_elements()}

    def test_iterations_counter_is_zero(self, small_candidates, small_repository):
        clustering = TreeClusterer().cluster(small_candidates, small_repository)
        assert clustering.iterations == 0


class TestFragmentClusterer:
    def test_fragments_respect_max_size(self, synthetic_candidates, synthetic_repository):
        max_size = 15
        clusterer = FragmentClusterer(max_fragment_size=max_size)
        clustering = clusterer.cluster(synthetic_candidates, synthetic_repository)
        assert_valid_partition(clustering, synthetic_candidates)
        # Fragments contain at most max_size repository nodes, so clusters of
        # mapping elements can never exceed that bound either.
        assert all(size <= max_size for size in clustering.clusters.sizes())

    def test_more_fragments_than_trees(self, synthetic_candidates, synthetic_repository):
        fragments = FragmentClusterer(max_fragment_size=10).cluster(
            synthetic_candidates, synthetic_repository
        )
        trees = TreeClusterer().cluster(synthetic_candidates, synthetic_repository)
        assert fragments.cluster_count >= trees.cluster_count

    def test_invalid_fragment_size(self):
        with pytest.raises(ClusteringError):
            FragmentClusterer(max_fragment_size=0)


class TestClusterQuality:
    def test_useful_clusters_score_higher_than_useless(self, small_candidates, small_repository):
        clustering = TreeClusterer().cluster(small_candidates, small_repository)
        objective = BellflowerObjective(alpha=0.5)
        scored = order_clusters_by_quality(clustering.clusters.clusters(), small_candidates, objective)
        assert scored[0][1] >= scored[-1][1]
        for cluster, score in scored:
            if not cluster.is_useful(small_candidates):
                assert score == 0.0
            else:
                assert 0.0 < score <= 1.0

    def test_quality_bounded_by_alpha_formula(self, small_candidates, small_repository):
        clustering = TreeClusterer().cluster(small_candidates, small_repository)
        objective = BellflowerObjective(alpha=0.5)
        for cluster in clustering.clusters:
            quality = cluster_quality(cluster, small_candidates, objective)
            assert quality <= 1.0

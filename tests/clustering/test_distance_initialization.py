"""Tests for clustering distance measures, centroid seeding and medoid computation."""

import math

import pytest

from repro.clustering.centroid import medoid, total_distance
from repro.clustering.distance import BlendedDistance, PathLengthDistance
from repro.clustering.initialization import MEminInitializer, PerTreeInitializer, RandomInitializer
from repro.errors import ClusteringError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElement, MappingElementSets


class TestPathLengthDistance:
    def test_matches_tree_distance(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        a = small_repository.ref(0, 3)  # authorName
        b = small_repository.ref(0, 5)  # title
        assert distance.distance(a, b) == 3.0

    def test_infinite_across_trees(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        assert math.isinf(distance.distance(small_repository.ref(0, 0), small_repository.ref(1, 0)))


class TestBlendedDistance:
    def test_blend_combines_path_and_name_terms(self, small_repository, small_oracle):
        blended = BlendedDistance(small_oracle, small_repository, path_weight=0.5, name_scale=4.0)
        pure = PathLengthDistance(small_oracle)
        title = small_repository.find_by_name("title")[0]
        author = small_repository.find_by_name("authorName")[0]
        # Identical nodes: both terms are zero.
        assert blended.distance(title, title) == 0.0
        # The blend is bounded by the two extremes: pure path (weight on names 0)
        # and pure path plus the full name penalty.
        value = blended.distance(title, author)
        assert 0.5 * pure.distance(title, author) <= value <= 0.5 * pure.distance(title, author) + 2.0
        # With path_weight=1.0 the blend degenerates to the path distance.
        pure_blend = BlendedDistance(small_oracle, small_repository, path_weight=1.0)
        assert pure_blend.distance(title, author) == pure.distance(title, author)
        assert math.isinf(
            blended.distance(small_repository.ref(0, 0), small_repository.ref(1, 0))
        )

    def test_parameter_validation(self, small_repository, small_oracle):
        with pytest.raises(ClusteringError):
            BlendedDistance(small_oracle, small_repository, path_weight=1.5)
        with pytest.raises(ClusteringError):
            BlendedDistance(small_oracle, small_repository, name_scale=0.0)


class TestInitializers:
    def test_me_min_uses_smallest_candidate_set(self, small_repository):
        sets = MappingElementSets([0, 1])
        for node in (1, 2, 3):
            sets.add(MappingElement(0, small_repository.ref(0, node), 0.8))
        sets.add(MappingElement(1, small_repository.ref(0, 5), 0.9))
        centroids = MEminInitializer().initial_centroids(sets, small_repository)
        assert [c.node_id for c in centroids] == [5]

    def test_me_min_deduplicates_targets(self, small_repository):
        sets = MappingElementSets([0])
        sets.add(MappingElement(0, small_repository.ref(0, 5), 0.9))
        sets.add(MappingElement(0, small_repository.ref(0, 5), 0.7))
        centroids = MEminInitializer().initial_centroids(sets, small_repository)
        assert len(centroids) == 1

    def test_random_initializer_is_deterministic_and_bounded(self, small_candidates, small_repository):
        first = RandomInitializer(centroid_count=3, seed=5).initial_centroids(
            small_candidates, small_repository
        )
        second = RandomInitializer(centroid_count=3, seed=5).initial_centroids(
            small_candidates, small_repository
        )
        assert first == second
        assert len(first) <= 3

    def test_per_tree_initializer_covers_trees_with_elements(self, small_candidates, small_repository):
        centroids = PerTreeInitializer(centroids_per_tree=1, seed=1).initial_centroids(
            small_candidates, small_repository
        )
        trees_with_elements = {e.ref.tree_id for e in small_candidates.all_elements()}
        assert {c.tree_id for c in centroids} == trees_with_elements

    def test_invalid_parameters(self):
        with pytest.raises(ClusteringError):
            RandomInitializer(centroid_count=0)
        with pytest.raises(ClusteringError):
            PerTreeInitializer(centroids_per_tree=0)


class TestMedoid:
    def test_single_member(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        only = small_repository.ref(0, 2)
        assert medoid([only], distance) == only

    def test_medoid_minimizes_total_distance(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        members = [small_repository.ref(0, node) for node in (1, 2, 3, 5)]  # book, data, authorName, title
        chosen = medoid(members, distance, sample_limit=None)
        best_total = total_distance(chosen, members, distance)
        for member in members:
            assert best_total <= total_distance(member, members, distance)

    def test_empty_members_rejected(self, small_oracle):
        with pytest.raises(ClusteringError):
            medoid([], PathLengthDistance(small_oracle))

    def test_sampled_medoid_still_a_member(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        members = [small_repository.ref(0, node) for node in range(7)]
        chosen = medoid(members, distance, sample_limit=3)
        assert chosen in members

"""Tests for the cluster and cluster-set data structures."""

import pytest

from repro.clustering.cluster import Cluster, ClusterSet
from repro.errors import ClusteringError
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.schema.repository import RepositoryNodeRef


def ref(global_id, tree_id=0):
    return RepositoryNodeRef(global_id=global_id, tree_id=tree_id, node_id=global_id)


@pytest.fixture
def candidates():
    sets = MappingElementSets([0, 1])
    sets.add(MappingElement(0, ref(1), 0.9))
    sets.add(MappingElement(0, ref(5), 0.7))
    sets.add(MappingElement(1, ref(2), 0.8))
    sets.add(MappingElement(1, ref(9, tree_id=1), 0.8))
    return sets


def test_cluster_rejects_cross_tree_members():
    with pytest.raises(ClusteringError):
        Cluster(cluster_id=0, tree_id=0, members={ref(3, tree_id=1)})
    cluster = Cluster(cluster_id=0, tree_id=0)
    with pytest.raises(ClusteringError):
        cluster.add(ref(3, tree_id=1))


def test_cluster_rejects_cross_tree_centroid():
    with pytest.raises(ClusteringError):
        Cluster(cluster_id=0, tree_id=0, members={ref(1)}, centroid=ref(9, tree_id=1))


def test_cluster_size_and_membership(candidates):
    cluster = Cluster(cluster_id=0, tree_id=0, members={ref(1), ref(2)})
    assert cluster.size == 2
    assert ref(1) in cluster
    assert cluster.member_global_ids() == {1, 2}
    assert cluster.mapping_element_count(candidates) == 2


def test_useful_cluster_needs_every_personal_node(candidates):
    useful = Cluster(cluster_id=0, tree_id=0, members={ref(1), ref(2)})
    assert useful.is_useful(candidates)
    not_useful = Cluster(cluster_id=1, tree_id=0, members={ref(1), ref(5)})
    assert not not_useful.is_useful(candidates)


def test_restricted_candidates(candidates):
    cluster = Cluster(cluster_id=0, tree_id=0, members={ref(1), ref(2)})
    restricted = cluster.restricted_candidates(candidates)
    assert restricted.sizes() == {0: 1, 1: 1}


def test_cluster_set_operations(candidates):
    clusters = ClusterSet(
        [
            Cluster(cluster_id=0, tree_id=0, members={ref(1), ref(2)}),
            Cluster(cluster_id=1, tree_id=0, members={ref(5)}),
            Cluster(cluster_id=2, tree_id=1, members=set()),
        ]
    )
    assert clusters.cluster_count == 3
    assert len(clusters.non_empty()) == 2
    assert clusters.sizes() == [2, 1, 0]
    assert clusters.total_members() == 3
    assert [c.cluster_id for c in clusters.useful_clusters(candidates)] == [0]
    assert clusters.mapping_element_sizes(candidates) == [2, 1, 0]
    assignment = clusters.assignment()
    assert assignment[1] == 0 and assignment[5] == 1

"""Tests for reclustering strategies and convergence criteria."""

import pytest

from repro.clustering.cluster import Cluster
from repro.clustering.convergence import IterationStats, RelaxedConvergence, TotalStability
from repro.clustering.distance import PathLengthDistance
from repro.clustering.reclustering import (
    CompositeReclustering,
    JoinReclustering,
    NoReclustering,
    RemoveReclustering,
    join_and_remove,
)
from repro.errors import ClusteringError
from repro.utils.counters import CounterSet


def make_cluster(repository, cluster_id, tree_id, node_ids, centroid_node):
    members = {repository.ref(tree_id, node_id) for node_id in node_ids}
    return Cluster(
        cluster_id=cluster_id,
        tree_id=tree_id,
        members=members,
        centroid=repository.ref(tree_id, centroid_node),
    )


class TestJoinReclustering:
    def test_joins_nearby_clusters_in_same_tree(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        counters = CounterSet()
        # Centroids authorName (3) and shelf (4) are 2 apart in the library tree.
        clusters = [
            make_cluster(small_repository, 0, 0, [3], 3),
            make_cluster(small_repository, 1, 0, [4], 4),
            make_cluster(small_repository, 2, 1, [2], 2),
        ]
        joined = JoinReclustering(distance_threshold=2.0).recluster(clusters, distance, counters)
        assert len(joined) == 2
        assert counters["joined_clusters"] == 1
        merged = next(c for c in joined if c.tree_id == 0)
        assert merged.member_global_ids() == {small_repository.global_id(0, 3), small_repository.global_id(0, 4)}

    def test_does_not_join_distant_clusters(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        clusters = [
            make_cluster(small_repository, 0, 0, [3], 3),       # authorName
            make_cluster(small_repository, 1, 0, [6], 6),       # address (distance 4)
        ]
        joined = JoinReclustering(distance_threshold=2.0).recluster(clusters, distance, CounterSet())
        assert len(joined) == 2

    def test_join_is_transitive_within_one_pass(self, small_repository, small_oracle):
        distance = PathLengthDistance(small_oracle)
        # authorName(3) - data(2) - book(1): consecutive distances 1, chained join.
        clusters = [
            make_cluster(small_repository, 0, 0, [3], 3),
            make_cluster(small_repository, 1, 0, [2], 2),
            make_cluster(small_repository, 2, 0, [1], 1),
        ]
        joined = JoinReclustering(distance_threshold=1.0).recluster(clusters, distance, CounterSet())
        assert len(joined) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ClusteringError):
            JoinReclustering(distance_threshold=-1.0)


class TestRemoveReclustering:
    def test_removes_tiny_clusters(self, small_repository, small_oracle):
        counters = CounterSet()
        clusters = [
            make_cluster(small_repository, 0, 0, [1, 2, 3], 2),
            make_cluster(small_repository, 1, 0, [6], 6),
        ]
        kept = RemoveReclustering(min_size=2).recluster(
            clusters, PathLengthDistance(small_oracle), counters
        )
        assert len(kept) == 1
        assert counters["removed_clusters"] == 1
        assert counters["freed_members"] == 1

    def test_invalid_min_size(self):
        with pytest.raises(ClusteringError):
            RemoveReclustering(min_size=0)


class TestComposite:
    def test_join_and_remove_composition(self, small_repository, small_oracle):
        strategy = join_and_remove(distance_threshold=2.0, min_size=2)
        assert isinstance(strategy, CompositeReclustering)
        clusters = [
            make_cluster(small_repository, 0, 0, [3], 3),
            make_cluster(small_repository, 1, 0, [4], 4),   # joined with 0
            make_cluster(small_repository, 2, 0, [6], 6),   # too far, then removed (size 1)
        ]
        final = strategy.recluster(clusters, PathLengthDistance(small_oracle), CounterSet())
        assert len(final) == 1
        assert final[0].size == 2

    def test_composite_requires_strategies(self):
        with pytest.raises(ClusteringError):
            CompositeReclustering([])

    def test_no_reclustering_is_identity(self, small_repository, small_oracle):
        clusters = [make_cluster(small_repository, 0, 0, [1], 1)]
        assert NoReclustering().recluster(clusters, PathLengthDistance(small_oracle), CounterSet()) == clusters


class TestConvergence:
    def test_total_stability(self):
        criterion = TotalStability(max_iterations=10)
        stable = IterationStats(iteration=3, total_elements=100, switched_elements=0, previous_cluster_count=5, cluster_count=5)
        moving = IterationStats(iteration=3, total_elements=100, switched_elements=1, previous_cluster_count=5, cluster_count=5)
        assert criterion.has_converged(stable)
        assert not criterion.has_converged(moving)
        capped = IterationStats(iteration=10, total_elements=100, switched_elements=50, previous_cluster_count=5, cluster_count=9)
        assert criterion.has_converged(capped)

    def test_relaxed_convergence_thresholds(self):
        criterion = RelaxedConvergence(switch_threshold=0.05, cluster_change_threshold=0.05, max_iterations=20)
        nearly_stable = IterationStats(iteration=3, total_elements=100, switched_elements=4, previous_cluster_count=100, cluster_count=98)
        too_many_switches = IterationStats(iteration=3, total_elements=100, switched_elements=10, previous_cluster_count=100, cluster_count=100)
        assert criterion.has_converged(nearly_stable)
        assert not criterion.has_converged(too_many_switches)

    def test_relaxed_convergence_min_iterations(self):
        criterion = RelaxedConvergence(min_iterations=3)
        early = IterationStats(iteration=1, total_elements=10, switched_elements=0, previous_cluster_count=5, cluster_count=5)
        assert not criterion.has_converged(early)

    def test_iteration_stats_fractions(self):
        stats = IterationStats(iteration=1, total_elements=0, switched_elements=0, previous_cluster_count=0, cluster_count=3)
        assert stats.switch_fraction == 0.0
        assert stats.cluster_change_fraction == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RelaxedConvergence(switch_threshold=2.0)
        with pytest.raises(ValueError):
            RelaxedConvergence(max_iterations=0)
        with pytest.raises(ValueError):
            RelaxedConvergence(min_iterations=50, max_iterations=10)
        with pytest.raises(ValueError):
            TotalStability(max_iterations=0)

"""Corpus sources: deterministic enumeration, stable ids, typed errors."""

from __future__ import annotations

import tarfile
import zipfile

import pytest

from repro.errors import IngestError
from repro.ingest import ArchiveSource, BundledCorpusSource, CorpusSource, DirectorySource

GOOD_DTD = "<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>"
GOOD_XSD = (
    "<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>"
    "<xs:element name='order' type='xs:string'/></xs:schema>"
)


class TestDirectorySource:
    def test_enumerates_sorted_with_stable_ids(self, tmp_path):
        (tmp_path / "nested").mkdir()
        (tmp_path / "zeta.dtd").write_text(GOOD_DTD)
        (tmp_path / "nested" / "alpha.xsd").write_text(GOOD_XSD)
        (tmp_path / "ignored.txt").write_text("not a schema")
        source = DirectorySource(tmp_path, label="web")
        documents = list(source.documents())
        assert [doc.doc_id for doc in documents] == ["web/nested/alpha.xsd", "web/zeta.dtd"]
        assert [doc.format for doc in documents] == ["xsd", "dtd"]
        assert documents[1].payload == GOOD_DTD.encode("utf-8")

    def test_two_walks_are_identical(self, tmp_path):
        for name in ("b.dtd", "a.dtd", "c.xsd"):
            (tmp_path / name).write_text(GOOD_DTD if name.endswith("dtd") else GOOD_XSD)
        source = DirectorySource(tmp_path)
        assert list(source.documents()) == list(source.documents())

    def test_missing_directory_is_typed(self, tmp_path):
        with pytest.raises(IngestError, match="does not exist"):
            list(DirectorySource(tmp_path / "nope").documents())

    def test_label_with_slash_is_rejected(self, tmp_path):
        with pytest.raises(IngestError, match="slash-free"):
            DirectorySource(tmp_path, label="a/b")

    def test_satisfies_the_source_protocol(self, tmp_path):
        assert isinstance(DirectorySource(tmp_path), CorpusSource)


class TestArchiveSource:
    def test_zip_members_sorted(self, tmp_path):
        archive = tmp_path / "corpus.zip"
        with zipfile.ZipFile(archive, "w") as handle:
            handle.writestr("z.dtd", GOOD_DTD)
            handle.writestr("a.xsd", GOOD_XSD)
            handle.writestr("readme.md", "skip me")
        documents = list(ArchiveSource(archive).documents())
        assert [doc.doc_id for doc in documents] == ["corpus/a.xsd", "corpus/z.dtd"]
        assert documents[1].payload == GOOD_DTD.encode("utf-8")

    def test_tar_members_sorted(self, tmp_path):
        import io

        archive = tmp_path / "corpus.tar.gz"
        with tarfile.open(archive, "w:gz") as handle:
            for name, text in (("deep/z.dtd", GOOD_DTD), ("a.xsd", GOOD_XSD)):
                payload = text.encode("utf-8")
                info = tarfile.TarInfo(name)
                info.size = len(payload)
                handle.addfile(info, io.BytesIO(payload))
        documents = list(ArchiveSource(archive, label="tar").documents())
        assert [doc.doc_id for doc in documents] == ["tar/a.xsd", "tar/deep/z.dtd"]

    def test_not_an_archive_is_typed(self, tmp_path):
        bogus = tmp_path / "plain.bin"
        bogus.write_bytes(b"neither zip nor tar")
        with pytest.raises(IngestError, match="neither a zip nor a tar"):
            list(ArchiveSource(bogus).documents())

    def test_missing_archive_is_typed(self, tmp_path):
        with pytest.raises(IngestError, match="does not exist"):
            list(ArchiveSource(tmp_path / "nope.zip").documents())


class TestBundledCorpusSource:
    def test_covers_the_bundled_corpus_in_name_order(self):
        from repro.workload.corpus import bundled_corpus_documents

        documents = list(BundledCorpusSource().documents())
        assert [doc.doc_id for doc in documents] == [
            f"bundled/{name}.{fmt}"
            for name, (fmt, _) in sorted(bundled_corpus_documents().items())
        ]
        assert all(doc.origin.startswith("repro.workload.corpus:") for doc in documents)

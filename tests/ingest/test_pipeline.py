"""The ingestion pipeline's contracts: determinism, resume, quarantine, dedupe.

The two load-bearing properties (ISSUE 10's acceptance gates):

* two uninterrupted runs over the same sources produce **byte-identical**
  frozen snapshots;
* a run killed at *any* stage boundary and resumed produces the same bytes as
  the uninterrupted run.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import IngestError
from repro.ingest import (
    STAGES,
    BundledCorpusSource,
    DirectorySource,
    IngestConfig,
    IngestPipeline,
)

GOOD_DTD = "<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>"
BAD_XSD = "<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'><unclosed>"

#: Small chunk size so even the tiny test corpus exercises multi-generation
#: merges (freeze + at least one compact).
CONFIG = IngestConfig(merge_chunk_trees=3)


@pytest.fixture
def corpus_dir(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "good.dtd").write_text(GOOD_DTD, encoding="utf-8")
    (corpus / "bad.xsd").write_text(BAD_XSD, encoding="utf-8")
    (corpus / "binary.dtd").write_bytes(b"\xff\xfe broken bytes")
    # Same content as good.dtd under a different name: the dedupe stage must
    # drop it as a duplicate.
    (corpus / "copy-of-good.dtd").write_text(GOOD_DTD, encoding="utf-8")
    return corpus


def make_sources(corpus_dir):
    return [BundledCorpusSource(), DirectorySource(corpus_dir, label="web")]


def run_pipeline(run_dir, corpus_dir, **kwargs):
    pipeline = IngestPipeline(run_dir, make_sources(corpus_dir), CONFIG)
    return pipeline, pipeline.run(**kwargs)


class TestFullRun:
    def test_quarantines_with_typed_reasons(self, tmp_path, corpus_dir):
        pipeline, status = run_pipeline(tmp_path / "run", corpus_dir)
        records = {record["document"]: record for record in pipeline.store.quarantined()}
        assert set(records) == {"web/bad.xsd", "web/binary.dtd"}
        assert records["web/bad.xsd"]["stage"] == "parse"
        assert records["web/bad.xsd"]["reason"]["type"] == "SchemaParseError"
        assert "invalid XML" in records["web/bad.xsd"]["reason"]["message"]
        assert records["web/binary.dtd"]["reason"]["type"] == "UnicodeDecodeError"
        assert status["quarantined"] == ["web/bad.xsd", "web/binary.dtd"]

    def test_dedupe_drops_content_duplicates(self, tmp_path, corpus_dir):
        pipeline, _ = run_pipeline(tmp_path / "run", corpus_dir)
        checkpoint = pipeline.store.load_checkpoint("dedupe")
        dropped = {entry["doc_id"]: entry["duplicate_of"] for entry in checkpoint["dropped"]}
        assert dropped == {"web/good.dtd": "web/copy-of-good.dtd"}

    def test_two_runs_are_byte_identical(self, tmp_path, corpus_dir):
        _, first = run_pipeline(tmp_path / "one", corpus_dir)
        _, second = run_pipeline(tmp_path / "two", corpus_dir)
        assert first["snapshot"]["sha256"] == second["snapshot"]["sha256"]
        assert (tmp_path / "one" / "out.frozen").read_bytes() == (
            tmp_path / "two" / "out.frozen"
        ).read_bytes()

    def test_snapshot_is_loadable_and_queryable(self, tmp_path, corpus_dir):
        from repro.storage import load_frozen_service
        from repro.workload.personal import book_personal_schema

        _, status = run_pipeline(tmp_path / "run", corpus_dir)
        service = load_frozen_service(status["snapshot"]["path"])
        result = service.match(book_personal_schema())
        assert result.mappings, "bundled corpus must yield mappings for the book schema"

    def test_multiple_generations_were_exercised(self, tmp_path, corpus_dir):
        pipeline, _ = run_pipeline(tmp_path / "run", corpus_dir)
        checkpoint = pipeline.store.load_checkpoint("merge")
        assert len(checkpoint["generations"]) >= 2


class TestResume:
    @pytest.mark.parametrize("stop_after", STAGES[:-1])
    def test_kill_at_any_stage_boundary_resumes_bit_identically(
        self, tmp_path, corpus_dir, stop_after
    ):
        _, reference = run_pipeline(tmp_path / "reference", corpus_dir)
        interrupted, status = run_pipeline(
            tmp_path / "interrupted", corpus_dir, stop_after=stop_after
        )
        assert status["snapshot"] is None
        resumed = IngestPipeline(tmp_path / "interrupted", make_sources(corpus_dir))
        final = resumed.run(resume=True)
        assert final["snapshot"]["sha256"] == reference["snapshot"]["sha256"]

    def test_resume_without_sources_after_fetch_completes(self, tmp_path, corpus_dir):
        _, reference = run_pipeline(tmp_path / "reference", corpus_dir)
        run_pipeline(tmp_path / "run", corpus_dir, stop_after="parse")
        final = IngestPipeline(tmp_path / "run").run(resume=True)
        assert final["snapshot"]["sha256"] == reference["snapshot"]["sha256"]

    def test_resume_mid_fetch_without_sources_is_refused(self, tmp_path, corpus_dir):
        pipeline = IngestPipeline(tmp_path / "run", make_sources(corpus_dir), CONFIG)
        pipeline.run(stop_after="fetch")
        # Wipe the fetch checkpoint's completeness by deleting it entirely:
        # the stage is now unfinished and needs its sources back.
        pipeline.store.checkpoint_path("fetch").unlink()
        with pytest.raises(IngestError, match="no sources"):
            IngestPipeline(tmp_path / "run").run(resume=True)

    def test_resume_with_mismatched_config_is_refused(self, tmp_path, corpus_dir):
        run_pipeline(tmp_path / "run", corpus_dir, stop_after="dedupe")
        different = IngestConfig(merge_chunk_trees=99)
        with pytest.raises(IngestError, match="config does not match"):
            IngestPipeline(tmp_path / "run", make_sources(corpus_dir), different).run(resume=True)

    def test_resume_with_changed_source_document_is_refused(self, tmp_path, corpus_dir):
        run_pipeline(tmp_path / "run", corpus_dir, stop_after="fetch")
        # The interrupted fetch recorded good.dtd's digest; changing the file
        # must be detected instead of silently mixing two corpus versions.
        (corpus_dir / "good.dtd").write_text("<!ELEMENT z (#PCDATA)>", encoding="utf-8")
        pipeline = IngestPipeline(tmp_path / "run", make_sources(corpus_dir))
        pipeline.store.checkpoint_path("fetch").unlink()
        # Rebuild an in-progress checkpoint naming the old digest.
        with pytest.raises(IngestError):
            checkpoint = {"documents": [{"doc_id": "web/good.dtd", "sha256": "stale"}]}
            pipeline.store.save_checkpoint("fetch", checkpoint, complete=False)
            pipeline.run(resume=True)


class TestRunLifecycle:
    def test_fresh_run_refuses_an_existing_run_dir(self, tmp_path, corpus_dir):
        run_pipeline(tmp_path / "run", corpus_dir, stop_after="fetch")
        with pytest.raises(IngestError, match="already holds"):
            run_pipeline(tmp_path / "run", corpus_dir)

    def test_resume_needs_a_manifest(self, tmp_path):
        with pytest.raises(IngestError, match="no manifest"):
            IngestPipeline(tmp_path / "empty").run(resume=True)

    def test_run_needs_sources(self, tmp_path):
        with pytest.raises(IngestError, match="at least one source"):
            IngestPipeline(tmp_path / "run").run()

    def test_unknown_stop_stage_is_typed(self, tmp_path, corpus_dir):
        pipeline = IngestPipeline(tmp_path / "run", make_sources(corpus_dir), CONFIG)
        with pytest.raises(IngestError, match="unknown stage"):
            pipeline.run(stop_after="polish")

    def test_duplicate_source_labels_are_rejected(self, tmp_path, corpus_dir):
        with pytest.raises(IngestError, match="duplicate source labels"):
            IngestPipeline(
                tmp_path / "run",
                [DirectorySource(corpus_dir, label="web"), DirectorySource(corpus_dir, label="web")],
            )

    def test_status_reports_stage_progress(self, tmp_path, corpus_dir):
        pipeline, _ = run_pipeline(tmp_path / "run", corpus_dir, stop_after="validate")
        status = pipeline.status()
        assert status["stages"]["fetch"]["state"] == "complete"
        assert status["stages"]["validate"]["state"] == "complete"
        assert status["stages"]["merge"]["state"] == "pending"
        assert status["snapshot"] is None

    def test_checkpoints_are_canonical_json(self, tmp_path, corpus_dir):
        pipeline, _ = run_pipeline(tmp_path / "run", corpus_dir)
        for stage in STAGES:
            raw = pipeline.store.checkpoint_path(stage).read_text(encoding="utf-8")
            document = json.loads(raw)
            assert raw == json.dumps(document, indent=2, sort_keys=True) + "\n"

"""Shared fixtures for the test suite.

Fixtures fall into two groups: small hand-built schemas mirroring the paper's
running example (Fig. 1), and session-scoped synthetic workloads used by the
integration tests so the expensive generation / element-matching steps run
once.
"""

from __future__ import annotations

import pytest

from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector
from repro.schema.builder import TreeBuilder
from repro.schema.node import DataType, NodeKind, SchemaNode
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import paper_personal_schema


@pytest.fixture
def book_schema() -> SchemaTree:
    """The personal schema ``s`` of the paper's Fig. 1: book(title, author)."""
    builder = TreeBuilder("book-personal")
    root = builder.root("book")
    builder.child(root, "title", datatype="string")
    builder.child(root, "author", datatype="string")
    return builder.build()


@pytest.fixture
def library_tree() -> SchemaTree:
    """The repository fragment of the paper's Fig. 1.

    lib(n1) -> book(n2) -> data(n3) -> authorName(n4), shelf(n6)
                        -> title(n5)
            -> address(n7)
    Node ids follow insertion order: lib=0, book=1, data=2, authorName=3,
    shelf=4, title=5, address=6.
    """
    builder = TreeBuilder("fig1-lib")
    lib = builder.root("lib")
    book = builder.child(lib, "book")
    data = builder.child(book, "data")
    builder.child(data, "authorName", datatype="string")
    builder.child(data, "shelf", datatype="string")
    builder.child(book, "title", datatype="string")
    builder.child(lib, "address", datatype="string")
    return builder.build()


@pytest.fixture
def contact_tree() -> SchemaTree:
    """A small person-directory tree containing a contact block."""
    builder = TreeBuilder("directory")
    root = builder.root("directory")
    person = builder.child(root, "person")
    builder.child(person, "name", datatype="string")
    builder.child(person, "address", datatype="string")
    builder.child(person, "email", datatype="string")
    employer = builder.child(person, "employer")
    builder.child(employer, "companyName", datatype="string")
    return builder.build()


@pytest.fixture
def order_tree() -> SchemaTree:
    """A small commerce tree without contact-like elements."""
    builder = TreeBuilder("order")
    root = builder.root("order")
    item = builder.child(root, "item")
    builder.child(item, "price", datatype="decimal")
    builder.child(item, "quantity", datatype="integer")
    builder.child(root, "orderDate", datatype="date")
    return builder.build()


@pytest.fixture
def small_repository(library_tree, contact_tree, order_tree) -> SchemaRepository:
    """A three-tree repository used across matcher / mapping / clustering tests."""
    repository = SchemaRepository(name="small-repository")
    repository.add_tree(library_tree)
    repository.add_tree(contact_tree)
    repository.add_tree(order_tree)
    return repository


@pytest.fixture
def paper_schema() -> SchemaTree:
    """The personal schema of the paper's main experiment (name/address/email)."""
    return paper_personal_schema()


@pytest.fixture
def small_candidates(paper_schema, small_repository):
    """Mapping elements of the paper schema against the small repository."""
    selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.4)
    return selector.select(paper_schema, small_repository)


@pytest.fixture
def small_oracle(small_repository) -> RepositoryDistanceOracle:
    return RepositoryDistanceOracle(small_repository)


# -- session-scoped synthetic workload -------------------------------------------


@pytest.fixture(scope="session")
def synthetic_repository() -> SchemaRepository:
    """A ~1 200-node synthetic repository shared by the integration tests."""
    profile = RepositoryProfile(
        target_node_count=1200,
        min_tree_size=15,
        max_tree_size=90,
        name="test-repository",
        seed=4242,
    )
    return RepositoryGenerator(profile).generate()


@pytest.fixture(scope="session")
def synthetic_candidates(synthetic_repository):
    """Element-matching result of the paper schema against the synthetic repository."""
    selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.45)
    return selector.select(paper_personal_schema(), synthetic_repository)


@pytest.fixture(scope="session")
def synthetic_personal_schema() -> SchemaTree:
    return paper_personal_schema()

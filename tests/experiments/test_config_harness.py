"""Tests for the experiment configuration and the registry harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, build_workload
from repro.experiments.harness import registry, run_experiment


class TestConfig:
    def test_paper_scale_defaults(self):
        config = ExperimentConfig.paper_scale()
        assert config.repository_nodes == 9750
        assert config.delta == 0.75
        assert config.alpha == 0.5
        assert tuple(config.variant_names) == ("small", "medium", "large", "tree")

    def test_quick_is_smaller(self):
        assert ExperimentConfig.quick().repository_nodes < ExperimentConfig.paper_scale().repository_nodes

    def test_objective_uses_alpha_override(self):
        config = ExperimentConfig.paper_scale()
        assert config.objective().alpha == config.alpha
        assert config.objective(alpha=0.25).alpha == 0.25

    def test_repository_profile_carries_seed_and_size(self):
        config = ExperimentConfig(repository_nodes=1234, seed=9)
        profile = config.repository_profile()
        assert profile.target_node_count == 1234
        assert profile.seed == 9


class TestWorkload:
    def test_build_workload_produces_complete_candidates(self, experiment_workload):
        assert experiment_workload.candidates.is_complete()
        assert experiment_workload.mapping_element_count > 0
        assert experiment_workload.repository.node_count >= 1500
        assert experiment_workload.personal_schema.node_count == 3


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        assert {"table1", "figure4", "figure5", "figure6", "ablations"} <= set(registry.ids())

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            registry.get("table7")
        with pytest.raises(ExperimentError):
            run_experiment("table7")

    def test_contains(self):
        assert "table1" in registry
        assert "nope" not in registry

    def test_run_experiment_dispatches(self, experiment_config, experiment_workload):
        result = run_experiment("figure4", experiment_config, experiment_workload)
        assert hasattr(result, "series")

"""Shared (session-scoped) workload for the experiment tests.

The experiments are the most expensive tests in the suite; they all run
against one small workload that is generated once per session.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig, build_workload


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig(
        repository_nodes=1500,
        min_tree_size=15,
        max_tree_size=100,
        element_threshold=0.45,
        seed=1606,
    )


@pytest.fixture(scope="session")
def experiment_workload(experiment_config):
    return build_workload(experiment_config)


@pytest.fixture(scope="session")
def table1_result(experiment_config, experiment_workload):
    from repro.experiments.table1 import run

    return run(experiment_config, experiment_workload)

"""Tests that the experiment modules regenerate the paper's artefacts with the right shape.

These assertions encode the *qualitative* claims of the evaluation section —
the relationships the paper highlights — rather than its absolute numbers,
which depend on the authors' web-harvested repository.
"""

import pytest

from repro.experiments.ablations import run_all as run_ablations
from repro.experiments.figure4 import run as run_figure4
from repro.experiments.figure5 import run as run_figure5
from repro.experiments.figure6 import run as run_figure6


class TestTable1:
    def test_all_variants_present_with_rows(self, table1_result):
        assert set(table1_result.results) == {"small", "medium", "large", "tree"}
        assert len(table1_result.rows) == 4
        assert "Table 1a" in table1_result.render()

    def test_clustering_reduces_search_space_monotonically(self, table1_result):
        spaces = {row["variant"]: row["search_space"] for row in table1_result.rows}
        assert spaces["small"] <= spaces["medium"] <= spaces["large"] <= spaces["tree"]
        assert spaces["small"] < spaces["tree"]

    def test_clustering_reduces_partial_mappings(self, table1_result):
        partials = {row["variant"]: row["partial_mappings"] for row in table1_result.rows}
        assert partials["small"] <= partials["tree"]
        assert partials["medium"] <= partials["tree"]

    def test_clustered_runs_lose_some_mappings(self, table1_result):
        mappings = {row["variant"]: row["mappings"] for row in table1_result.rows}
        assert mappings["small"] <= mappings["medium"] <= mappings["tree"]

    def test_tree_variant_has_no_clustering_cost_and_full_space(self, table1_result):
        rows = {row["variant"]: row for row in table1_result.rows}
        assert rows["tree"]["search_space_pct"] == pytest.approx(1.0)
        assert rows["tree"]["clustering_seconds"] <= rows["small"]["clustering_seconds"] + 1.0

    def test_clustered_variants_have_more_smaller_clusters(self, table1_result):
        rows = {row["variant"]: row for row in table1_result.rows}
        assert rows["small"]["useful_clusters"] >= rows["tree"]["useful_clusters"]
        assert rows["small"]["avg_mapping_elements"] <= rows["tree"]["avg_mapping_elements"]


class TestFigure4:
    def test_three_series_with_paper_bucketing(self, experiment_config, experiment_workload):
        result = run_figure4(experiment_config, experiment_workload)
        assert [series.strategy_name for series in result.series] == [
            "no reclustering",
            "join",
            "join & remove",
        ]
        assert "[1,1]" in result.series[0].histogram
        assert "[128,255]" in result.series[0].histogram

    def test_join_and_remove_eliminate_tiny_clusters(self, experiment_config, experiment_workload):
        result = run_figure4(experiment_config, experiment_workload)
        by_name = {series.strategy_name: series for series in result.series}
        assert by_name["join"].histogram["[1,1]"] <= by_name["no reclustering"].histogram["[1,1]"]
        assert by_name["join & remove"].histogram["[1,1]"] == 0
        assert (
            by_name["join & remove"].cluster_count
            <= by_name["join"].cluster_count
            <= by_name["no reclustering"].cluster_count
        )

    def test_render_contains_counts(self, experiment_config, experiment_workload):
        rendered = run_figure4(experiment_config, experiment_workload).render()
        assert "cluster size" in rendered


class TestFigure5:
    def test_tree_line_is_constant_100_percent(self, experiment_config, experiment_workload, table1_result):
        result = run_figure5(experiment_config, experiment_workload, table1=table1_result)
        assert all(point.fraction == 1.0 for point in result.curves["tree"])

    def test_preservation_never_decreases_with_threshold(self, experiment_config, experiment_workload, table1_result):
        result = run_figure5(experiment_config, experiment_workload, table1=table1_result)
        for variant in ("small", "medium", "large"):
            fractions = result.fractions(variant)
            assert all(later >= earlier - 0.05 for earlier, later in zip(fractions, fractions[1:]))

    def test_larger_clusters_preserve_at_least_as_much_at_delta(
        self, experiment_config, experiment_workload, table1_result
    ):
        result = run_figure5(experiment_config, experiment_workload, table1=table1_result)
        at_delta = {variant: result.fractions(variant)[0] for variant in ("small", "medium", "large")}
        assert at_delta["small"] <= at_delta["large"] + 1e-9

    def test_render(self, experiment_config, experiment_workload, table1_result):
        rendered = run_figure5(experiment_config, experiment_workload, table1=table1_result).render()
        assert "Figure 5" in rendered and "%" in rendered


class TestFigure6:
    def test_path_heavy_objective_is_preserved_best(self, experiment_config, experiment_workload):
        result = run_figure6(experiment_config, experiment_workload)
        assert result.mean_preservation(0.25) >= result.mean_preservation(0.75)

    def test_reference_runs_use_matching_alpha(self, experiment_config, experiment_workload):
        result = run_figure6(experiment_config, experiment_workload)
        for alpha in result.alphas:
            assert result.clustered_results[alpha].mapping_count <= result.reference_results[alpha].mapping_count


class TestAblations:
    def test_all_ablation_families_present(self, experiment_config, experiment_workload):
        result = run_ablations(experiment_config, experiment_workload)
        families = {row.ablation for row in result.rows}
        assert families == {
            "centroid seeding",
            "clustering distance",
            "mapping generator",
            "cluster ordering",
        }
        assert "Ablation" in result.render()

    def test_complete_generators_agree_and_bounding_prunes(self, experiment_config, experiment_workload):
        result = run_ablations(experiment_config, experiment_workload)
        rows = {row.configuration: row.metrics for row in result.rows_for("mapping generator")}
        assert rows["branch-and-bound (paper)"]["mappings"] == rows["exhaustive"]["mappings"]
        assert rows["a-star"]["mappings"] == rows["exhaustive"]["mappings"]
        assert rows["branch-and-bound (paper)"]["partial_mappings"] <= rows["exhaustive"]["partial_mappings"]
        assert rows["beam (width 50)"]["mappings"] <= rows["exhaustive"]["mappings"]

    def test_cluster_ordering_reaches_best_mapping_no_later(self, experiment_config, experiment_workload):
        result = run_ablations(experiment_config, experiment_workload)
        rows = {row.configuration: row.metrics for row in result.rows_for("cluster ordering")}
        assert rows["quality-ordered"]["best_score"] == rows["arbitrary order"]["best_score"]
        assert rows["quality-ordered"]["partials_until_best"] <= rows["arbitrary order"]["partials_total"]

"""Snapshot round-trip tests: serialize → load → bit-identical behaviour.

A snapshot persists *derived* state, so a bug here would not crash — it would
silently return wrong distances or wrong candidates.  The tests therefore pin
exact equality between a loaded service and the one that wrote the snapshot,
for every structure the snapshot carries.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.reclustering import join_and_remove
from repro.errors import ClusteringError, ReproError
from repro.labeling.distance import TreeDistanceOracle
from repro.labeling.sparse_table import SparseTable
from repro.matchers.name import FuzzyNameMatcher, NGramNameMatcher, TokenNameMatcher
from repro.service import (
    MatchingService,
    RepositoryPartition,
    load_snapshot,
    service_to_snapshot_dict,
    snapshot_to_service,
    write_snapshot,
)
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

from _equivalence import candidates_key, result_key


def make_repository(seed: int, nodes: int = 450):
    profile = RepositoryProfile(
        target_node_count=nodes, min_tree_size=10, max_tree_size=45, seed=seed, name=f"snap-{seed}"
    )
    return RepositoryGenerator(profile).generate()


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("threshold", [0.45, 0.6])
    def test_match_results_bit_identical(self, tmp_path, seed, threshold):
        service = MatchingService(make_repository(seed), element_threshold=threshold)
        path = tmp_path / "snapshot.json"
        write_snapshot(service, path)
        loaded = load_snapshot(path)
        for schema in (paper_personal_schema(), contact_personal_schema(), book_personal_schema()):
            original = service.match(schema)
            restored = loaded.match(schema)
            assert candidates_key(original.candidates) == candidates_key(restored.candidates)
            assert result_key(original) == result_key(restored)

    def test_snapshot_is_plain_json_and_complete(self, tmp_path):
        service = MatchingService(make_repository(3), element_threshold=0.5)
        path = tmp_path / "snapshot.json"
        payload = write_snapshot(service, path)
        reread = json.loads(path.read_text(encoding="utf-8"))
        assert reread == payload
        repository = service.repository
        assert len(payload["oracles"]) == repository.tree_count
        assert payload["partition"] is not None
        assert len(payload["partition"]["fragments"]) == repository.tree_count
        assert len(payload["name_indexes"]) == 1
        from repro.service.snapshot import _unpack_ints

        entry = payload["name_indexes"][0]
        assert len(_unpack_ints(entry["node_name_ids"])) == repository.node_count
        assert entry["blocking"] is not None  # warm-up built the trigram structures

    def test_loaded_service_needs_no_rebuild(self, tmp_path):
        """Every oracle/partition row must be present post-load, not lazily rebuilt."""
        service = MatchingService(make_repository(5), element_threshold=0.5)
        path = tmp_path / "snapshot.json"
        write_snapshot(service, path)
        loaded = load_snapshot(path)
        assert loaded.oracle.built_oracle_count == loaded.repository.tree_count
        assert loaded.partition.built_tree_count == loaded.repository.tree_count
        assert loaded.repository.cached_name_indexes()  # index installed, not lazy

    def test_oracle_round_trip_is_exact(self, tmp_path):
        repository = make_repository(9)
        service = MatchingService(repository, element_threshold=0.5)
        path = tmp_path / "snapshot.json"
        write_snapshot(service, path)
        loaded = load_snapshot(path)
        for tree in repository.trees():
            fresh = TreeDistanceOracle(tree)
            restored = loaded.oracle.oracle(tree.tree_id)
            ids = list(tree.node_ids())
            for first in ids[:: max(1, len(ids) // 7)]:
                for second in ids[:: max(1, len(ids) // 7)]:
                    assert restored.distance(first, second) == fresh.distance(first, second)
                    assert restored.lca(first, second) == fresh.lca(first, second)

    @pytest.mark.parametrize(
        "matcher",
        [
            FuzzyNameMatcher(case_sensitive=True),
            NGramNameMatcher(),
            TokenNameMatcher(),
        ],
        ids=["fuzzy-cs", "ngram", "token"],
    )
    def test_bundled_matchers_round_trip(self, tmp_path, matcher):
        service = MatchingService(make_repository(2, nodes=250), matcher=matcher, element_threshold=0.5)
        path = tmp_path / "snapshot.json"
        write_snapshot(service, path)
        loaded = load_snapshot(path)
        schema = paper_personal_schema()
        assert result_key(service.match(schema)) == result_key(loaded.match(schema))

    @pytest.mark.parametrize("variant", ["medium", "tree"])
    def test_variant_services_round_trip(self, tmp_path, variant):
        service = MatchingService(make_repository(4, nodes=300), variant=variant, element_threshold=0.5)
        path = tmp_path / "snapshot.json"
        write_snapshot(service, path)
        loaded = load_snapshot(path)
        assert loaded.variant_name == variant
        schema = paper_personal_schema()
        assert result_key(service.match(schema)) == result_key(loaded.match(schema))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_round_trip_property(self, tmp_path_factory, seed):
        """Property form of the round-trip guarantee over generated forests."""
        service = MatchingService(make_repository(seed, nodes=150), element_threshold=0.5)
        path = tmp_path_factory.mktemp("snap") / "snapshot.json"
        write_snapshot(service, path)
        loaded = load_snapshot(path)
        schema = paper_personal_schema()
        original = service.match(schema)
        restored = loaded.match(schema)
        assert candidates_key(original.candidates) == candidates_key(restored.candidates)
        assert result_key(original) == result_key(restored)


class TestSnapshotValidation:
    def test_rejects_wrong_format_and_version(self):
        with pytest.raises(ReproError):
            snapshot_to_service({"format": "something-else"})
        service = MatchingService(make_repository(6, nodes=150), element_threshold=0.5)
        payload = service_to_snapshot_dict(service)
        payload["version"] = 999
        with pytest.raises(ReproError):
            snapshot_to_service(payload)

    def test_custom_matcher_requires_override(self):
        class WeirdMatcher(FuzzyNameMatcher):
            pass

        service = MatchingService(
            make_repository(6, nodes=150), matcher=WeirdMatcher(), element_threshold=0.5
        )
        payload = service_to_snapshot_dict(service)
        assert payload["config"]["matcher"] is None
        with pytest.raises(ReproError):
            snapshot_to_service(payload)
        loaded = snapshot_to_service(payload, matcher=WeirdMatcher())
        schema = paper_personal_schema()
        assert result_key(service.match(schema)) == result_key(loaded.match(schema))

    def test_partition_reclustering_requires_override(self):
        partition_payload = RepositoryPartition(
            max_fragment_size=10, reclustering=join_and_remove()
        ).to_payload()
        with pytest.raises(ClusteringError):
            RepositoryPartition.from_payload(partition_payload)
        restored = RepositoryPartition.from_payload(
            partition_payload, reclustering=join_and_remove()
        )
        assert restored.max_fragment_size == 10


class TestSparseTableRebuild:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
    def test_from_built_answers_like_the_original(self, values):
        original = SparseTable(values)
        rebuilt = SparseTable.from_built(values, original.levels())
        for low in range(0, len(values), max(1, len(values) // 8)):
            for high in range(low, len(values), max(1, len(values) // 8)):
                assert rebuilt.argmin(low, high) == original.argmin(low, high)

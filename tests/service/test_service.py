"""MatchingService behaviour: query cache, executors, partition clusterer."""

from __future__ import annotations

import pytest

from repro.clustering.baselines import FragmentClusterer
from repro.errors import ConfigurationError
from repro.matchers.selection import MappingElementSelector
from repro.matchers.name import FuzzyNameMatcher
from repro.schema.builder import TreeBuilder
from repro.service import (
    MatchingService,
    PartitionClusterer,
    RepositoryPartition,
    schema_fingerprint,
)
from repro.utils.executor import SerialExecutor, ThreadPoolTaskExecutor
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import contact_personal_schema, paper_personal_schema

from _equivalence import result_key


@pytest.fixture(scope="module")
def service_repository():
    profile = RepositoryProfile(
        target_node_count=600, min_tree_size=12, max_tree_size=60, seed=17, name="svc"
    )
    return RepositoryGenerator(profile).generate()


class TestQueryCache:
    def test_repeated_query_hits_and_is_bit_identical(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        cold = service.match(paper_personal_schema())
        warm = service.match(paper_personal_schema())
        assert service.counters.get("query_cache_misses") == 1
        assert service.counters.get("query_cache_hits") == 1
        assert result_key(cold) == result_key(warm)
        # The cached table is reused as-is, not recomputed.
        assert warm.candidates is cold.candidates
        assert warm.element_matching_seconds == 0.0

    def test_structurally_identical_schemas_share_an_entry(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        service.match(paper_personal_schema())
        service.match(paper_personal_schema())  # a fresh but identical tree
        assert service.counters.get("query_cache_hits") == 1
        assert service.query_cache_len == 1

    def test_different_schemas_get_different_entries(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        service.match(paper_personal_schema())
        service.match(contact_personal_schema())
        assert service.counters.get("query_cache_misses") == 2
        assert service.query_cache_len == 2

    def test_cache_capacity_is_bounded(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5, query_cache_size=1)
        service.match(paper_personal_schema())
        service.match(contact_personal_schema())
        assert service.query_cache_len == 1

    def test_cache_can_be_disabled(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5, query_cache_size=0)
        first = service.match(paper_personal_schema())
        second = service.match(paper_personal_schema())
        assert service.query_cache_len == 0
        # A disabled cache reports no hit/miss statistics at all.
        assert service.counters.get("query_cache_hits") == 0
        assert service.counters.get("query_cache_misses") == 0
        assert service.counters.get("queries") == 2
        assert result_key(first) == result_key(second)


class TestFingerprint:
    def test_name_of_tree_is_ignored_but_structure_is_not(self):
        builder_a = TreeBuilder("one")
        root = builder_a.root("book")
        builder_a.child(root, "title")
        builder_a.child(root, "author")
        tree_a = builder_a.build()
        builder_b = TreeBuilder("two")
        root = builder_b.root("book")
        builder_b.child(root, "title")
        builder_b.child(root, "author")
        assert schema_fingerprint(tree_a) == schema_fingerprint(builder_b.build())

        builder_c = TreeBuilder("three")
        root = builder_c.root("book")
        title = builder_c.child(root, "title")
        builder_c.child(title, "author")  # same names, different parent structure
        assert schema_fingerprint(tree_a) != schema_fingerprint(builder_c.build())

    def test_names_kinds_and_datatypes_matter(self):
        base = TreeBuilder("base")
        root = base.root("book")
        base.child(root, "title", datatype="string")
        renamed = TreeBuilder("renamed")
        root = renamed.root("book")
        renamed.child(root, "titel", datatype="string")
        retyped = TreeBuilder("retyped")
        root = retyped.root("book")
        retyped.child(root, "title", datatype="integer")
        fingerprints = {
            schema_fingerprint(base.build()),
            schema_fingerprint(renamed.build()),
            schema_fingerprint(retyped.build()),
        }
        assert len(fingerprints) == 3


class TestQueryCacheKeying:
    """The cache key must cover the effective δ override and the repository version."""

    def test_delta_override_is_a_distinct_cache_entry(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        schema = paper_personal_schema()
        service.match(schema)
        assert service.counters.get("query_cache_misses") == 1
        # Same schema, different effective δ: must not hit the δ-default entry.
        service.match(schema, delta=0.3)
        assert service.counters.get("query_cache_misses") == 2
        assert service.counters.get("query_cache_hits") == 0
        # Repeating the override now hits its own entry.
        service.match(schema, delta=0.3)
        assert service.counters.get("query_cache_hits") == 1

    def test_delta_override_after_cached_query_is_never_stale(self, service_repository):
        cached = MatchingService(service_repository, element_threshold=0.5)
        schema = paper_personal_schema()
        cached.match(schema)  # populate the cache under the default δ
        overridden = cached.match(schema, delta=0.3)
        fresh = MatchingService(service_repository, element_threshold=0.5, query_cache_size=0)
        assert result_key(overridden) == result_key(fresh.match(schema, delta=0.3))

    def test_direct_repository_mutation_invalidates_via_version(self, service_repository):
        """Mutations bypassing add_tree/remove_tree cannot serve stale hits."""
        profile = RepositoryProfile(
            target_node_count=300, min_tree_size=12, max_tree_size=60, seed=91, name="svc-direct"
        )
        repository = RepositoryGenerator(profile).generate()
        service = MatchingService(repository, variant="tree", element_threshold=0.5)

        personal = TreeBuilder("direct-personal")
        root = personal.root("zqxcontainer")
        personal.child(root, "zqxalpha", datatype="string")
        personal.child(root, "zqxbeta", datatype="string")
        schema = personal.build()

        before = service.match(schema)
        assert before.mapping_count == 0  # nothing in the repository matches

        addition = TreeBuilder("zqx-tree")
        root = addition.root("zqxcontainer")
        addition.child(root, "zqxalpha", datatype="string")
        addition.child(root, "zqxbeta", datatype="string")
        # Mutate the repository directly — the service cache is NOT cleared.
        repository.add_tree(addition.build())

        after = service.match(schema)
        assert after.mapping_count >= 1  # a stale cached table would report 0
        assert service.counters.get("query_cache_hits") == 0
        assert service.counters.get("query_cache_misses") == 2

    def test_service_level_mutations_still_hit_after_requery(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        schema = paper_personal_schema()
        first = service.match(schema)
        tree = TreeBuilder("cache-key-tree")
        root = tree.root("person")
        tree.child(root, "name", datatype="string")
        service.add_tree(tree.build())
        second = service.match(schema)   # version changed: miss, recompute
        third = service.match(schema)    # same version again: hit
        assert service.counters.get("query_cache_misses") == 2
        assert service.counters.get("query_cache_hits") == 1
        assert result_key(second) == result_key(third)
        assert first.candidates.total() <= second.candidates.total()


class TestTopKQueries:
    def test_top_k_is_prefix_of_complete_ranking(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        schema = paper_personal_schema()
        complete = service.match(schema)
        top = service.match(schema, top_k=3)
        assert result_key(top) == result_key(complete)[:3]
        assert len(top.mappings) <= 3

    def test_top_k_reuses_the_cached_element_table(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        schema = paper_personal_schema()
        service.match(schema)
        service.match(schema, top_k=1)  # same fingerprint/δ/version: cache hit
        assert service.counters.get("query_cache_hits") == 1


class TestExecutors:
    @pytest.mark.parametrize(
        "executor", [None, SerialExecutor(), ThreadPoolTaskExecutor(4)], ids=["inline", "serial", "threads"]
    )
    def test_all_executors_produce_identical_results(self, service_repository, executor):
        service = MatchingService(service_repository, element_threshold=0.5, executor=executor)
        reference = MatchingService(service_repository, element_threshold=0.5)
        for schema in (paper_personal_schema(), contact_personal_schema()):
            assert result_key(service.match(schema)) == result_key(reference.match(schema))
        if isinstance(executor, ThreadPoolTaskExecutor):
            executor.close()

    def test_threaded_kmeans_variant_matches_serial(self, service_repository):
        with ThreadPoolTaskExecutor(4) as executor:
            threaded = MatchingService(
                service_repository, variant="medium", element_threshold=0.5, executor=executor
            )
            serial = MatchingService(service_repository, variant="medium", element_threshold=0.5)
            assert result_key(threaded.match(paper_personal_schema())) == result_key(
                serial.match(paper_personal_schema())
            )


class TestPartitionClusterer:
    def test_matches_fragment_clusterer_without_reclustering(self, service_repository):
        """The precomputed partition must reproduce the online fragmenter exactly."""
        selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.5)
        candidates = selector.select(paper_personal_schema(), service_repository)
        online = FragmentClusterer(max_fragment_size=20).cluster(candidates, service_repository)
        partition = RepositoryPartition(max_fragment_size=20)
        precomputed = PartitionClusterer(partition).cluster(candidates, service_repository)
        online_clusters = sorted(
            (cluster.tree_id, tuple(sorted(cluster.member_global_ids())))
            for cluster in online.clusters
        )
        precomputed_clusters = sorted(
            (cluster.tree_id, tuple(sorted(cluster.member_global_ids())))
            for cluster in precomputed.clusters
        )
        assert online_clusters == precomputed_clusters

    def test_partition_builds_lazily_per_queried_tree(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        result = service.match(paper_personal_schema())
        trees_with_elements = {
            element.ref.tree_id for element in result.candidates.iter_all_elements()
        }
        # Exactly the trees holding mapping elements were fragmented — no more.
        assert service.partition.built_tree_count == len(trees_with_elements)


class TestConfiguration:
    def test_clusterer_and_variant_are_mutually_exclusive(self, service_repository):
        with pytest.raises(ConfigurationError):
            MatchingService(
                service_repository,
                variant="medium",
                clusterer=PartitionClusterer(RepositoryPartition()),
            )

    def test_variant_name_round_trips_through_constructor(self, service_repository):
        """The name the service reports must be accepted back by the constructor."""
        service = MatchingService(service_repository)
        again = MatchingService(service_repository, variant=service.variant_name)
        assert again.variant_name == "partition"
        assert again.partition is not None

    def test_cannot_remove_last_tree(self):
        builder = TreeBuilder("only")
        root = builder.root("only")
        builder.child(root, "name")
        from repro.schema.repository import SchemaRepository

        repository = SchemaRepository()
        repository.add_tree(builder.build())
        service = MatchingService(repository)
        with pytest.raises(ConfigurationError):
            service.remove_tree(0)

    def test_stats_reports_the_essentials(self, service_repository):
        service = MatchingService(service_repository, element_threshold=0.5)
        service.match(paper_personal_schema())
        stats = service.stats()
        assert stats["variant"] == "partition"
        assert stats["queries"] == 1
        assert stats["trees"] == service_repository.tree_count

"""Incremental-update equivalence: live mutations ≡ full rebuild.

The service's claim is that after any sequence of ``add_tree`` /
``remove_tree`` calls, every observable — mapping-element sets, clusters,
ranked mappings, name lookups, prefilter decisions — is *bit-identical* to a
service built from scratch over the final forest.  These tests pin that claim
at the index level and at the full-pipeline level.
"""

from __future__ import annotations

import random

import pytest

from repro.matchers.index import RepositoryNameIndex
from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.service import MatchingService, RepositoryPartition
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import contact_personal_schema, paper_personal_schema

from _equivalence import candidates_key, cluster_key, result_key

NAME_POOL = [
    "name", "fullName", "author", "authorName", "address", "addr", "email",
    "mail", "title", "price", "person", "contact", "order", "entry",
]


def random_tree(seed: int, size: int = 8):
    rng = random.Random(seed)
    builder = TreeBuilder(f"rand-{seed}")
    root = builder.root(rng.choice(NAME_POOL))
    parents = [root]
    for _ in range(size - 1):
        parent = rng.choice(parents)
        parents.append(builder.child(parent, rng.choice(NAME_POOL)))
    return builder.build()


def clone_tree(tree):
    return tree_from_dict(tree_to_dict(tree))


def clone_forest(repository: SchemaRepository) -> SchemaRepository:
    fresh = SchemaRepository(name=repository.name)
    for tree in repository.trees():
        fresh.add_tree(clone_tree(tree))
    return fresh


@pytest.fixture
def base_repository() -> SchemaRepository:
    profile = RepositoryProfile(
        target_node_count=500, min_tree_size=12, max_tree_size=40, seed=99, name="inc-base"
    )
    return RepositoryGenerator(profile).generate()


class TestIndexIncrementalEquivalence:
    @pytest.mark.parametrize("case_sensitive", [False, True])
    @pytest.mark.parametrize("warm_blocking", [False, True])
    def test_with_tree_added_identical_to_fresh_build(
        self, base_repository, case_sensitive, warm_blocking
    ):
        index = RepositoryNameIndex.for_repository(base_repository, case_sensitive=case_sensitive)
        if warm_blocking:
            index.fuzzy_candidates("name", 0.6)
        tree_id = base_repository.add_tree(random_tree(5))
        incremental = index.with_tree_added(base_repository, tree_id)
        fresh = RepositoryNameIndex(base_repository, case_sensitive=case_sensitive)
        # Append-only update is exactly identical, internals included.
        assert incremental.keys == fresh.keys
        assert [
            incremental.refs_for_id(i) for i in range(incremental.unique_name_count)
        ] == [fresh.refs_for_id(i) for i in range(fresh.unique_name_count)]
        for query in ("name", "authorname", "titel", "zzz"):
            assert sorted(
                incremental.keys[i] for i in incremental.fuzzy_candidates(query, 0.6)[0]
            ) == sorted(fresh.keys[i] for i in fresh.fuzzy_candidates(query, 0.6)[0])
            assert (
                incremental.fuzzy_candidates(query, 0.6)[1]
                == fresh.fuzzy_candidates(query, 0.6)[1]
            )

    @pytest.mark.parametrize("warm_blocking", [False, True])
    @pytest.mark.parametrize("removed", [0, 3, 7])
    def test_with_tree_removed_observably_equivalent(self, base_repository, warm_blocking, removed):
        index = RepositoryNameIndex.for_repository(base_repository)
        if warm_blocking:
            index.fuzzy_candidates("name", 0.6)
        removed_node_count = base_repository.tree(removed).node_count
        base_repository.remove_tree(removed)
        incremental = index.with_tree_removed(base_repository, removed, removed_node_count)
        fresh = RepositoryNameIndex(base_repository)
        assert sorted(incremental.keys) == sorted(fresh.keys)
        for key in fresh.keys:
            inc_refs = incremental.refs_for_id(incremental.id_for(key))
            fresh_refs = fresh.refs_for_id(fresh.id_for(key))
            assert inc_refs == fresh_refs
        for query in ("name", "email", "order"):
            inc_ids, inc_pruned = incremental.fuzzy_candidates(query, 0.6)
            fresh_ids, fresh_pruned = fresh.fuzzy_candidates(query, 0.6)
            assert sorted(incremental.keys[i] for i in inc_ids) == sorted(
                fresh.keys[i] for i in fresh_ids
            )
            assert inc_pruned == fresh_pruned


class TestServiceIncrementalEquivalence:
    @pytest.mark.parametrize("variant", [None, "medium", "tree"])
    def test_add_then_match_equals_rebuild(self, base_repository, variant):
        service = MatchingService(base_repository, variant=variant, element_threshold=0.5)
        service.build_derived_state()
        service.match(paper_personal_schema())  # warm every cache pre-mutation
        for seed in (11, 12):
            service.add_tree(random_tree(seed, size=10))

        rebuilt = MatchingService(
            clone_forest(service.repository), variant=variant, element_threshold=0.5
        )
        for schema in (paper_personal_schema(), contact_personal_schema()):
            live = service.match(schema)
            scratch = rebuilt.match(schema)
            assert candidates_key(live.candidates) == candidates_key(scratch.candidates)
            assert cluster_key(live) == cluster_key(scratch)
            assert result_key(live) == result_key(scratch)

    @pytest.mark.parametrize("variant", [None, "medium"])
    def test_remove_then_match_equals_rebuild(self, base_repository, variant):
        service = MatchingService(base_repository, variant=variant, element_threshold=0.5)
        service.build_derived_state()
        service.match(paper_personal_schema())
        service.remove_tree(2)
        service.remove_tree(0)

        rebuilt = MatchingService(
            clone_forest(service.repository), variant=variant, element_threshold=0.5
        )
        for schema in (paper_personal_schema(), contact_personal_schema()):
            live = service.match(schema)
            scratch = rebuilt.match(schema)
            assert candidates_key(live.candidates) == candidates_key(scratch.candidates)
            assert result_key(live) == result_key(scratch)

    def test_interleaved_mutations_equal_rebuild(self, base_repository):
        service = MatchingService(base_repository, element_threshold=0.5)
        service.build_derived_state()
        service.match(paper_personal_schema())
        service.add_tree(random_tree(21, size=12))
        service.remove_tree(1)
        service.add_tree(random_tree(22, size=6))
        service.remove_tree(service.repository.tree_count - 1)

        rebuilt = MatchingService(clone_forest(service.repository), element_threshold=0.5)
        live = service.match(paper_personal_schema())
        scratch = rebuilt.match(paper_personal_schema())
        assert candidates_key(live.candidates) == candidates_key(scratch.candidates)
        assert result_key(live) == result_key(scratch)
        # Derived-state bookkeeping stayed consistent too.
        assert service.repository.name_index().node_count == service.repository.node_count
        assert service.partition.built_tree_count == service.repository.tree_count

    def test_mutations_clear_the_query_cache(self, base_repository):
        service = MatchingService(base_repository, element_threshold=0.5)
        service.match(paper_personal_schema())
        assert service.query_cache_len == 1
        service.add_tree(random_tree(31))
        assert service.query_cache_len == 0
        service.match(paper_personal_schema())
        service.remove_tree(0)
        assert service.query_cache_len == 0
        assert service.counters.get("trees_added") == 1
        assert service.counters.get("trees_removed") == 1


class TestExplicitPartitionClusterer:
    def test_adopted_partition_is_maintained_across_mutations(self, base_repository):
        """An externally constructed PartitionClusterer must stay consistent too."""
        from repro.service import PartitionClusterer

        partition = RepositoryPartition(max_fragment_size=15)
        service = MatchingService(
            base_repository, clusterer=PartitionClusterer(partition), element_threshold=0.5
        )
        assert service.partition is partition
        service.match(paper_personal_schema())  # lazily builds fragment entries
        service.remove_tree(0)
        service.add_tree(random_tree(61, size=10))

        rebuilt = MatchingService(
            clone_forest(service.repository),
            element_threshold=0.5,
            partition_max_fragment_size=15,
        )
        live = service.match(paper_personal_schema())
        scratch = rebuilt.match(paper_personal_schema())
        assert candidates_key(live.candidates) == candidates_key(scratch.candidates)
        assert result_key(live) == result_key(scratch)
        assert service.partition.built_tree_count <= service.repository.tree_count


class TestPartitionIncremental:
    def test_partition_updates_match_full_rebuild(self, base_repository):
        partition = RepositoryPartition(max_fragment_size=12)
        partition.build_all(base_repository)
        tree_id = base_repository.add_tree(random_tree(41, size=30))
        partition.on_tree_added(base_repository, tree_id)
        base_repository.remove_tree(4)
        partition.on_tree_removed(4)

        rebuilt = RepositoryPartition(max_fragment_size=12)
        rebuilt.build_all(base_repository)
        for tree in base_repository.trees():
            assert partition.fragments_for(base_repository, tree.tree_id) == rebuilt.fragments_for(
                base_repository, tree.tree_id
            )

"""Lifecycle and determinism tests for the shared-memory repository views.

These pin the operational contract of ``repro.service.sharedmem``:

* publishing is explicit, attach is exact (bit-identical rankings), and the
  pickle redirect collapses task payloads to a segment name;
* segments never leak: ``unshare_memory``/``close`` unlink eagerly, worker
  crashes cannot unlink the publisher's segment, and mutations unpublish;
* results are independent of worker count and chunking — the executor's
  determinism contract survives the shared-memory fast path.
"""

from __future__ import annotations

import os
import pickle

import pytest
from concurrent.futures.process import BrokenProcessPool

from _equivalence import counters_key, execution_backends, path_records_key, result_key
from repro.errors import ConfigurationError, ReproError
from repro.matchers.name import NGramNameMatcher
from repro.objective.bellflower import BellflowerObjective
from repro.schema.builder import TreeBuilder
from repro.service.service import MatchingService
from repro.service.sharedmem import _load_segment
from repro.shard.service import ShardedMatchingService, split_repository
from repro.utils.executor import ProcessPoolTaskExecutor
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import paper_personal_schema


def make_repository(seed=97, nodes=400):
    profile = RepositoryProfile(
        target_node_count=nodes,
        min_tree_size=12,
        max_tree_size=50,
        name=f"shm-test-{seed}",
        seed=seed,
    )
    return RepositoryGenerator(profile).generate()


def make_service(repository=None, **kwargs):
    kwargs.setdefault("variant", "partition")
    kwargs.setdefault("query_cache_size", 0)
    service = MatchingService(repository or make_repository(), **kwargs)
    service.build_derived_state()
    return service


def shm_segments():
    """Names of python shared-memory segments currently in /dev/shm."""
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = shm_segments()
    yield
    assert shm_segments() - before == set(), "test leaked shared-memory segments"


class TestPublishAttach:
    def test_attach_round_trip_is_bit_identical(self):
        service = make_service()
        schema = paper_personal_schema()
        baseline = service.match(schema, top_k=5)
        view = service.share_memory()
        try:
            clone = pickle.loads(pickle.dumps(service))
            result = clone.match(schema, top_k=5)
            assert result_key(result) == result_key(baseline)
            assert path_records_key(result) == path_records_key(baseline)
        finally:
            service.unshare_memory()

    def test_redirected_pickles_are_tiny(self):
        service = make_service()
        plain_service = len(pickle.dumps(service))
        plain_oracle = len(pickle.dumps(service.oracle))
        service.share_memory()
        try:
            assert len(pickle.dumps(service)) < 256 < plain_service
            assert len(pickle.dumps(service.oracle)) < 256 < plain_oracle
        finally:
            service.unshare_memory()

    def test_attached_oracle_answers_like_the_original(self):
        service = make_service()
        repository = service.repository
        service.share_memory()
        try:
            attached = pickle.loads(pickle.dumps(service.oracle))
            for tree_id in (0, repository.tree_count - 1):
                tree = repository.tree(tree_id)
                first = repository.ref(tree_id, 0)
                last = repository.ref(tree_id, tree.node_count - 1)
                assert attached.distance(first, last) == service.oracle.distance(first, last)
        finally:
            service.unshare_memory()

    def test_share_memory_is_idempotent(self):
        service = make_service()
        view = service.share_memory()
        try:
            assert service.share_memory() is view
            assert len(shm_segments()) >= 1
        finally:
            service.unshare_memory()

    def test_segment_cache_is_reused_within_a_process(self):
        service = make_service()
        view = service.share_memory()
        try:
            first = _load_segment(view.name)
            second = _load_segment(view.name)
            assert first is second
        finally:
            service.unshare_memory()

    def test_stats_reports_shared_memory(self):
        service = make_service()
        assert service.stats()["shared_memory"] is False
        service.share_memory()
        try:
            assert service.stats()["shared_memory"] is True
        finally:
            service.unshare_memory()
        assert service.stats()["shared_memory"] is False


class TestPublishRefusals:
    def test_refuses_custom_matcher(self):
        class CustomMatcher(NGramNameMatcher):
            pass

        service = make_service(matcher=CustomMatcher())
        with pytest.raises(ConfigurationError, match="matcher"):
            service.share_memory()

    def test_refuses_custom_clusterer(self):
        from repro.clustering.baselines import FragmentClusterer

        service = make_service(variant=None, clusterer=FragmentClusterer(max_fragment_size=10))
        assert service.variant_name is None
        with pytest.raises(ConfigurationError, match="clusterer|variant"):
            service.share_memory()

    def test_refuses_custom_objective(self):
        class CustomObjective(BellflowerObjective):
            pass

        service = make_service(objective=CustomObjective())
        with pytest.raises(ConfigurationError, match="objective"):
            service.share_memory()

    def test_refuses_custom_generator(self):
        from repro.mapping.branch_and_bound import BranchAndBoundGenerator

        class CustomGenerator(BranchAndBoundGenerator):
            pass

        service = make_service(generator=CustomGenerator())
        with pytest.raises(ConfigurationError, match="generator"):
            service.share_memory()

    def test_refusal_leaves_no_segment(self):
        class CustomObjective(BellflowerObjective):
            pass

        service = make_service(objective=CustomObjective())
        before = shm_segments()
        with pytest.raises(ConfigurationError):
            service.share_memory()
        assert shm_segments() == before


class TestLifecycle:
    def test_unshare_removes_segment_and_is_idempotent(self):
        service = make_service()
        view = service.share_memory()
        assert view.name in shm_segments()
        service.unshare_memory()
        assert view.name not in shm_segments()
        assert view.stale
        service.unshare_memory()  # second call is a no-op

    def test_mutation_unpublishes_and_query_falls_back(self):
        service = make_service()
        schema = paper_personal_schema()
        view = service.share_memory()
        builder = TreeBuilder("added")
        root = builder.root("contactRoot")
        builder.child(root, "name", datatype="string")
        service.add_tree(builder.build())
        assert view.stale
        assert view.name not in shm_segments()
        assert service.shared_view is None
        # plain pickling works again and reflects the mutation
        clone = pickle.loads(pickle.dumps(service))
        assert clone.repository.tree_count == service.repository.tree_count

    def test_direct_repository_mutation_falls_back_without_unpublish(self):
        service = make_service()
        view = service.share_memory()
        try:
            builder = TreeBuilder("side-channel")
            root = builder.root("r")
            builder.child(root, "c")
            # bypass the service: version bumps, view goes version-stale
            service.repository.add_tree(builder.build())
            assert view.repository_version != service.repository.version
            blob = pickle.dumps(service.oracle)
            assert len(blob) > 256  # fell back to the copy path
            clone = pickle.loads(blob)
            assert clone.repository.tree_count == service.repository.tree_count
        finally:
            service.unshare_memory()

    def test_republish_after_mutation_creates_fresh_segment(self):
        service = make_service()
        first = service.share_memory()
        builder = TreeBuilder("second")
        root = builder.root("r")
        builder.child(root, "c")
        service.add_tree(builder.build())
        second = service.share_memory()
        try:
            assert second.name != first.name
            assert second.name in shm_segments()
        finally:
            service.unshare_memory()

    def test_attaching_a_missing_segment_raises(self):
        service = make_service()
        view = service.share_memory()
        name = view.name
        service.unshare_memory()
        with pytest.raises(ReproError, match="gone"):
            _load_segment(name + "x")


def _attach_and_crash(blob):  # pragma: no cover - runs in a worker process
    pickle.loads(blob)
    os._exit(1)


class TestWorkerCrash:
    def test_worker_crash_does_not_unlink_the_segment(self):
        service = make_service()
        schema = paper_personal_schema()
        baseline = service.match(schema, top_k=5)
        view = service.share_memory()
        try:
            blob = pickle.dumps(service)
            executor = ProcessPoolTaskExecutor(max_workers=2)
            with pytest.raises(BrokenProcessPool):
                executor.map(_attach_and_crash, [blob, blob])
            executor.close()
            # the publisher's segment must have survived the crashed workers
            assert view.name in shm_segments()
            fresh_executor = ProcessPoolTaskExecutor(max_workers=2)
            survivor = make_service(service.repository, executor=fresh_executor)
            survivor.repository._shared_view = view  # reuse the live view
            result = survivor.match(schema, top_k=5)
            fresh_executor.close()
            assert result_key(result) == result_key(baseline)
        finally:
            service.unshare_memory()


class TestDeterminism:
    def test_identical_results_across_worker_counts(self):
        repository = make_repository(seed=131)
        schema = paper_personal_schema()
        reference = make_service(repository)
        baseline = reference.match(schema, top_k=5)
        for workers in (1, 2, 4):
            executor = ProcessPoolTaskExecutor(max_workers=workers)
            service = make_service(repository, executor=executor)
            service.share_memory()
            try:
                result = service.match(schema, top_k=5)
                assert result_key(result) == result_key(baseline), workers
                assert path_records_key(result) == path_records_key(baseline), workers
            finally:
                service.unshare_memory()
                executor.close()

    def test_identical_results_across_chunkings(self):
        repository = make_repository(seed=151)
        schema = paper_personal_schema()
        reference = make_service(repository)
        baseline = reference.match(schema)
        for tasks_per_worker in (1, 3):
            executor = ProcessPoolTaskExecutor(max_workers=2, tasks_per_worker=tasks_per_worker)
            service = make_service(repository, executor=executor)
            service.share_memory()
            try:
                result = service.match(schema)
                assert result_key(result) == result_key(baseline), tasks_per_worker
                assert counters_key(result) == counters_key(baseline), tasks_per_worker
            finally:
                service.unshare_memory()
                executor.close()

    def test_backend_sweep_is_equivalent(self):
        """Serial × thread × process × process+shm: one query, four regimes."""
        repository = make_repository(seed=173)
        schema = paper_personal_schema()
        keys = {}
        for name, executor_factory, share in execution_backends(max_workers=2):
            executor = executor_factory()
            service = make_service(repository, executor=executor)
            if share:
                service.share_memory()
            try:
                result = service.match(schema)
                keys[name] = (
                    result_key(result),
                    path_records_key(result),
                    counters_key(result),
                )
            finally:
                service.unshare_memory()
                if executor is not None:
                    executor.close()
        serial = keys.pop("serial")
        for name, key in keys.items():
            assert key == serial, name


class TestShardedService:
    def test_share_memory_covers_every_shard_and_close_cleans_up(self):
        repository = make_repository(seed=211)
        schema = paper_personal_schema()
        assignment = [i % 3 for i in range(repository.tree_count)]

        def build(executor=None):
            shards = [
                make_service(shard_repo)
                for shard_repo in split_repository(repository, assignment)
            ]
            return ShardedMatchingService(
                shards, assignment, executor=executor, query_cache_size=0
            )

        baseline = build().match(schema, top_k=5)
        executor = ProcessPoolTaskExecutor(max_workers=2)
        sharded = build(executor=executor)
        before = shm_segments()
        views = sharded.share_memory()
        assert len(views) == 3
        assert shm_segments() - before == {view.name for view in views}
        first = sharded.match(schema, top_k=5)
        second = sharded.match(schema, top_k=5)
        sharded.close()
        executor.close()
        assert shm_segments() == before
        assert result_key(first) == result_key(baseline)
        assert result_key(second) == result_key(baseline)
        assert path_records_key(first) == path_records_key(baseline)

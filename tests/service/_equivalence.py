"""Shared equivalence keys for the service test modules.

"Bit-identical" claims are asserted through these canonical projections; keep
them in one place so every service test checks the same identity.  (The
benchmark and example scripts carry their own minimal copies — they must stay
runnable standalone.)
"""

from __future__ import annotations


def result_key(result):
    """Ranked mappings as (score, signature) pairs — the mapping identity."""
    return result.ranking_key()


def candidates_key(sets):
    """MappingElementSets as per-node (global id, similarity) lists."""
    return {
        node_id: [(e.ref.global_id, e.similarity) for e in sets.elements_for(node_id)]
        for node_id in sets.personal_node_ids
    }


def cluster_key(result):
    """Cluster reports as comparable tuples."""
    return [
        (report.cluster_id, report.tree_id, report.member_count, report.search_space)
        for report in result.cluster_reports
    ]

"""Shared equivalence keys for the service test modules.

"Bit-identical" claims are asserted through these canonical projections; keep
them in one place so every service test checks the same identity.  (The
benchmark and example scripts carry their own minimal copies — they must stay
runnable standalone.)
"""

from __future__ import annotations


def result_key(result):
    """Ranked mappings as (score, signature) pairs — the mapping identity."""
    return result.ranking_key()


def candidates_key(sets):
    """MappingElementSets as per-node (global id, similarity) lists."""
    return {
        node_id: [(e.ref.global_id, e.similarity) for e in sets.elements_for(node_id)]
        for node_id in sets.personal_node_ids
    }


def cluster_key(result):
    """Cluster reports as comparable tuples."""
    return [
        (report.cluster_id, report.tree_id, report.member_count, report.search_space)
        for report in result.cluster_reports
    ]


def path_records_key(result):
    """Per-mapping path evidence: subtree edge counts and score components.

    ``target_edge_count`` is the ``|Et|`` the objective's path hint was
    evaluated at; the components carry the exact ``sim``/``path`` breakdown.
    Two results equal under this key computed identical mapping subtrees, not
    just identical final scores.
    """
    return [
        (
            mapping.tree_id,
            mapping.target_edge_count,
            tuple(sorted(mapping.components.items())),
            mapping.element_pairs(),
        )
        for mapping in result.mappings
    ]


def counters_key(result):
    """The result's counter set as a sorted, comparable tuple."""
    return tuple(sorted(result.counters.as_dict().items()))


def execution_backends(max_workers=2):
    """The four execution regimes every service query must agree across.

    Yields ``(name, executor_factory, share_memory)`` triples; ``executor``
    is ``None`` for the serial regime.  The shared-memory regime reuses the
    process executor but publishes the service's repository first, so workers
    attach instead of unpickling.
    """
    from repro.utils.executor import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor

    return [
        ("serial", lambda: None, False),
        ("thread", lambda: ThreadPoolTaskExecutor(max_workers=max_workers), False),
        ("process", lambda: ProcessPoolTaskExecutor(max_workers=max_workers), False),
        (
            "process+shm",
            lambda: ProcessPoolTaskExecutor(max_workers=max_workers),
            True,
        ),
    ]

"""Top-k matching through the full pipeline: result semantics, cross-cluster
bound sharing, and determinism across every executor backend."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.system.bellflower import Bellflower
from repro.system.variants import clustering_variant
from repro.utils.executor import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ThreadPoolTaskExecutor,
)
from repro.workload.personal import contact_personal_schema, paper_personal_schema


@pytest.fixture(scope="module")
def reference_results(synthetic_repository):
    """Complete (top_k=None) serial results per personal schema."""
    system = Bellflower(synthetic_repository, element_threshold=0.5, delta=0.6)
    return {
        "paper": system.match(paper_personal_schema()),
        "contact": system.match(contact_personal_schema()),
    }


class TestTopKSemantics:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_top_k_is_prefix_of_complete_ranking(self, synthetic_repository, reference_results, k):
        system = Bellflower(synthetic_repository, element_threshold=0.5, delta=0.6)
        for name, schema in (("paper", paper_personal_schema()), ("contact", contact_personal_schema())):
            top = system.match(schema, top_k=k)
            assert top.ranking_key() == reference_results[name].ranking_key()[:k]
            assert top.top_k == k
            assert len(top.mappings) <= k

    def test_top_k_search_prunes_more(self, synthetic_repository, reference_results):
        system = Bellflower(synthetic_repository, element_threshold=0.5, delta=0.6)
        top = system.match(paper_personal_schema(), top_k=1)
        complete = reference_results["paper"]
        assert top.partial_mappings <= complete.partial_mappings
        # With many clusters and one good mapping, the shared incumbent must
        # actually fire (the workload is sized to guarantee competition).
        assert top.counters["incumbent_pruned_partial_mappings"] > 0

    def test_invalid_top_k_rejected(self, synthetic_repository):
        system = Bellflower(synthetic_repository, element_threshold=0.5, delta=0.6)
        with pytest.raises(ConfigurationError):
            system.match(paper_personal_schema(), top_k=0)

    def test_top_k_with_kmeans_variant(self, synthetic_repository):
        spec = clustering_variant("medium")
        system = Bellflower(
            synthetic_repository,
            clusterer=spec.make_clusterer(),
            element_threshold=0.5,
            delta=0.6,
            variant_name=spec.name,
        )
        complete = system.match(paper_personal_schema())
        top = system.match(paper_personal_schema(), top_k=5)
        assert top.ranking_key() == complete.ranking_key()[:5]


class TestTopKExecutorDeterminism:
    @pytest.mark.parametrize("k", [1, 5])
    def test_identical_rankings_under_every_executor(self, synthetic_repository, k):
        serial_system = Bellflower(synthetic_repository, element_threshold=0.5, delta=0.6)
        reference = serial_system.match(paper_personal_schema(), top_k=k).ranking_key()

        with SerialExecutor() as serial, ThreadPoolTaskExecutor(4) as threads, ProcessPoolTaskExecutor(2) as processes:
            for executor in (serial, threads, processes):
                system = Bellflower(
                    synthetic_repository, element_threshold=0.5, delta=0.6, executor=executor
                )
                # Repeat to give timing-dependent floor propagation a chance
                # to vary; the ranking must never move.
                for _ in range(3):
                    assert system.match(paper_personal_schema(), top_k=k).ranking_key() == reference

    def test_complete_search_still_identical_under_process_executor(self, synthetic_repository):
        serial_system = Bellflower(synthetic_repository, element_threshold=0.5, delta=0.6)
        reference = serial_system.match(contact_personal_schema())
        with ProcessPoolTaskExecutor(2) as executor:
            system = Bellflower(
                synthetic_repository, element_threshold=0.5, delta=0.6, executor=executor
            )
            result = system.match(contact_personal_schema())
        assert result.ranking_key() == reference.ranking_key()
        # Without top-k there is no incumbent, so even the counters agree.
        assert result.generation.counters.as_dict() == reference.generation.counters.as_dict()

"""Tests for preservation metrics, efficiency summaries and variant presets."""

import pytest

from repro.clustering.baselines import FragmentClusterer, TreeClusterer
from repro.clustering.kmeans import KMeansClusterer
from repro.errors import ConfigurationError
from repro.matchers.selection import MappingElement
from repro.mapping.model import SchemaMapping
from repro.schema.repository import RepositoryNodeRef
from repro.system.metrics import (
    efficiency_summary,
    preservation_curve,
    preserved_fraction,
)
from repro.system.variants import available_variant_names, clustering_variant, standard_variants


def make_mapping(score, global_ids):
    assignment = {
        index: MappingElement(index, RepositoryNodeRef(gid, 0, gid), score)
        for index, gid in enumerate(global_ids)
    }
    return SchemaMapping(
        assignment=assignment,
        score=score,
        components={},
        target_edge_count=2,
        tree_id=0,
    )


class TestPreservation:
    def test_full_preservation(self):
        reference = [make_mapping(0.9, (1, 2)), make_mapping(0.8, (3, 4))]
        point = preserved_fraction(reference, list(reference), threshold=0.75)
        assert point.fraction == 1.0
        assert point.reference_count == 2

    def test_partial_preservation_counts_signatures(self):
        reference = [make_mapping(0.9, (1, 2)), make_mapping(0.8, (3, 4)), make_mapping(0.76, (5, 6))]
        clustered = [make_mapping(0.9, (1, 2))]
        point = preserved_fraction(reference, clustered, threshold=0.75)
        assert point.preserved_count == 1
        assert point.fraction == pytest.approx(1 / 3)

    def test_empty_reference_is_trivially_preserved(self):
        point = preserved_fraction([], [], threshold=0.9)
        assert point.fraction == 1.0

    def test_curve_is_sorted_by_threshold(self):
        reference = [make_mapping(s, (int(s * 100), int(s * 100) + 1)) for s in (0.95, 0.85, 0.76)]
        clustered = reference[:1]
        curve = preservation_curve(reference, clustered, thresholds=(0.9, 0.75))
        assert [point.threshold for point in curve] == [0.75, 0.9]
        # At 0.9 only the preserved mapping counts -> 100%; at 0.75 one of three.
        assert curve[1].fraction == 1.0
        assert curve[0].fraction == pytest.approx(1 / 3)


class TestEfficiencySummary:
    def test_rows_reference_largest_search_space(self, small_repository, paper_schema):
        from repro.system.bellflower import Bellflower

        baseline = Bellflower(small_repository, element_threshold=0.5, variant_name="tree").match(paper_schema)
        clustered = Bellflower(
            small_repository,
            clusterer=KMeansClusterer(),
            element_threshold=0.5,
            variant_name="kmeans",
        ).match(paper_schema, candidates=baseline.candidates)
        rows = efficiency_summary([clustered, baseline])
        by_variant = {row["variant"]: row for row in rows}
        assert by_variant["tree"]["search_space_pct"] == pytest.approx(1.0)
        assert by_variant["kmeans"]["search_space_pct"] <= 1.0
        assert set(by_variant["tree"]) >= {"useful_clusters", "partial_mappings", "mappings"}

    def test_empty_input(self):
        assert efficiency_summary([]) == []


class TestVariants:
    def test_standard_variants_order_matches_paper(self):
        assert [v.name for v in standard_variants()] == ["small", "medium", "large", "tree"]

    def test_variant_factories_produce_fresh_clusterers(self):
        variant = clustering_variant("medium")
        first = variant.make_clusterer()
        second = variant.make_clusterer()
        assert first is not second
        assert isinstance(first, KMeansClusterer)

    def test_tree_and_fragment_variants(self):
        assert isinstance(clustering_variant("tree").make_clusterer(), TreeClusterer)
        assert isinstance(clustering_variant("fragments").make_clusterer(), FragmentClusterer)

    def test_join_thresholds_differ_between_sizes(self):
        small = clustering_variant("small").make_clusterer()
        large = clustering_variant("large").make_clusterer()
        small_join = small.reclustering.strategies[0]
        large_join = large.reclustering.strategies[0]
        assert small_join.distance_threshold < large_join.distance_threshold

    def test_unknown_variant_raises(self):
        with pytest.raises(ConfigurationError):
            clustering_variant("does-not-exist")

    def test_available_variant_names_cover_standard_set(self):
        names = available_variant_names()
        assert {"small", "medium", "large", "tree", "fragments"} <= set(names)

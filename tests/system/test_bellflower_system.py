"""Tests for the Bellflower pipeline (Figs. 2 and 3)."""

import pytest

from repro.clustering.kmeans import KMeansClusterer
from repro.clustering.reclustering import join_and_remove
from repro.errors import ConfigurationError
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree
from repro.system.bellflower import Bellflower
from repro.system.variants import clustering_variant


class TestConfiguration:
    def test_requires_non_empty_repository(self):
        with pytest.raises(ConfigurationError):
            Bellflower(SchemaRepository("empty"))

    def test_rejects_invalid_delta(self, small_repository):
        with pytest.raises(ConfigurationError):
            Bellflower(small_repository, delta=1.5)

    def test_rejects_empty_personal_schema(self, small_repository):
        system = Bellflower(small_repository)
        with pytest.raises(ConfigurationError):
            system.match(SchemaTree("empty"))

    def test_variant_name_defaults_to_clusterer_name(self, small_repository):
        assert Bellflower(small_repository).variant_name == "tree-clusters"
        named = Bellflower(small_repository, variant_name="custom")
        assert named.variant_name == "custom"


class TestPipeline:
    def test_non_clustered_match_finds_exact_contact_block(self, small_repository, paper_schema):
        system = Bellflower(small_repository, element_threshold=0.5, delta=0.75)
        result = system.match(paper_schema)
        assert result.mapping_count >= 1
        best = result.mappings[0]
        names = [small_repository.node(e.ref).name for _, e in sorted(best.assignment.items())]
        assert names == ["name", "address", "email"]
        assert best.score >= 0.9

    def test_result_contains_stage_times_and_counters(self, small_repository, paper_schema):
        result = Bellflower(small_repository, element_threshold=0.5).match(paper_schema)
        assert result.element_matching_seconds >= 0.0
        assert result.clustering_seconds >= 0.0
        assert result.generation_seconds >= 0.0
        assert result.counters["mapping_elements"] == result.candidates.total()
        assert result.partial_mappings > 0

    def test_cluster_reports_only_cover_useful_clusters(self, small_repository, paper_schema):
        result = Bellflower(small_repository, element_threshold=0.5).match(paper_schema)
        assert result.useful_cluster_count == len(result.cluster_reports)
        for report in result.cluster_reports:
            assert report.search_space >= 1
            assert report.mapping_element_count >= paper_schema.node_count

    def test_precomputed_candidates_are_reused(self, small_repository, paper_schema):
        system = Bellflower(small_repository, element_threshold=0.5)
        candidates = system.element_matching(paper_schema)
        result = system.match(paper_schema, candidates=candidates)
        assert result.candidates is candidates
        assert result.element_matching_seconds == 0.0

    def test_mappings_are_sorted_and_deduplicated(self, small_repository, paper_schema):
        result = Bellflower(small_repository, element_threshold=0.4, delta=0.5).match(paper_schema)
        scores = [m.score for m in result.mappings]
        assert scores == sorted(scores, reverse=True)
        signatures = [m.signature() for m in result.mappings]
        assert len(signatures) == len(set(signatures))

    def test_delta_override_filters_results(self, small_repository, paper_schema):
        system = Bellflower(small_repository, element_threshold=0.4, delta=0.5)
        loose = system.match(paper_schema)
        strict = system.match(paper_schema, delta=0.9)
        assert strict.mapping_count <= loose.mapping_count
        assert all(m.score >= 0.9 for m in strict.mappings)


class TestClusteredVsNonClustered:
    def test_clustered_results_are_a_subset_of_non_clustered(self, synthetic_repository, synthetic_personal_schema):
        baseline_system = Bellflower(synthetic_repository, element_threshold=0.45, delta=0.75)
        baseline = baseline_system.match(synthetic_personal_schema)
        clustered_system = Bellflower(
            synthetic_repository,
            clusterer=clustering_variant("medium").make_clusterer(),
            element_threshold=0.45,
            delta=0.75,
        )
        clustered = clustered_system.match(synthetic_personal_schema, candidates=baseline.candidates)
        assert clustered.signatures() <= baseline.signatures()
        assert clustered.search_space <= baseline.search_space
        assert clustered.partial_mappings <= baseline.partial_mappings

    def test_custom_generator_is_honoured(self, small_repository, paper_schema):
        system = Bellflower(
            small_repository,
            generator=ExhaustiveGenerator(),
            element_threshold=0.5,
        )
        result = system.match(paper_schema)
        assert result.generation.counters["evaluated_mappings"] > 0

    def test_kmeans_clusterer_end_to_end(self, small_repository, paper_schema):
        clusterer = KMeansClusterer(reclustering=join_and_remove(2.0))
        system = Bellflower(small_repository, clusterer=clusterer, element_threshold=0.5)
        result = system.match(paper_schema)
        assert result.clustering is not None
        assert result.clustering.cluster_count >= 1

"""Tests for the general schema graph (Definition 1)."""

import pytest

from repro.errors import SchemaError, UnknownNodeError
from repro.schema.graph import SchemaGraph
from repro.schema.node import SchemaNode


def build_path_graph(names):
    graph = SchemaGraph("path")
    previous = None
    for name in names:
        node = graph.add_node(SchemaNode(name=name))
        if previous is not None:
            graph.add_edge(previous.node_id, node.node_id)
        previous = node
    return graph


def test_add_node_assigns_sequential_ids():
    graph = SchemaGraph()
    a = graph.add_node(SchemaNode(name="a"))
    b = graph.add_node(SchemaNode(name="b"))
    assert (a.node_id, b.node_id) == (0, 1)
    assert graph.node_count == 2


def test_add_edge_validates_endpoints():
    graph = SchemaGraph()
    graph.add_node(SchemaNode(name="a"))
    with pytest.raises(UnknownNodeError):
        graph.add_edge(0, 5)
    with pytest.raises(SchemaError):
        graph.add_edge(0, 0)


def test_edge_incidence_and_other():
    graph = build_path_graph(["a", "b"])
    edge = graph.edge(0)
    assert edge.endpoints() == (0, 1)
    assert edge.other(0) == 1
    assert edge.other(1) == 0
    with pytest.raises(SchemaError):
        edge.other(9)


def test_neighbors_and_degree():
    graph = build_path_graph(["a", "b", "c"])
    assert graph.neighbors(1) == [0, 2]
    assert graph.degree(1) == 2
    assert graph.degree(0) == 1


def test_shortest_path_on_path_graph():
    graph = build_path_graph(["a", "b", "c", "d"])
    assert graph.shortest_path(0, 3) == [0, 1, 2, 3]
    assert graph.path_length(0, 3) == 3
    assert graph.path_length(2, 2) == 0


def test_shortest_path_disconnected_returns_none():
    graph = SchemaGraph()
    graph.add_node(SchemaNode(name="a"))
    graph.add_node(SchemaNode(name="b"))
    assert graph.shortest_path(0, 1) is None
    assert graph.path_length(0, 1) is None


def test_connected_components():
    graph = SchemaGraph()
    for name in "abcd":
        graph.add_node(SchemaNode(name=name))
    graph.add_edge(0, 1)
    graph.add_edge(2, 3)
    assert graph.connected_components() == [[0, 1], [2, 3]]


def test_is_tree():
    path = build_path_graph(["a", "b", "c"])
    assert path.is_tree()
    cyclic = build_path_graph(["a", "b", "c"])
    cyclic.add_edge(0, 2)
    assert not cyclic.is_tree()
    assert not SchemaGraph().is_tree()


def test_nodes_by_name():
    graph = build_path_graph(["a", "b", "a"])
    assert [node.node_id for node in graph.nodes_by_name("a")] == [0, 2]


def test_subgraph_nodes_keeps_internal_edges_only():
    graph = build_path_graph(["a", "b", "c", "d"])
    sub = graph.subgraph_nodes([1, 2, 3])
    assert sub.node_count == 3
    assert sub.edge_count == 2
    assert sorted(node.name for node in sub.nodes()) == ["b", "c", "d"]


def test_subgraph_rejects_unknown_node():
    graph = build_path_graph(["a"])
    with pytest.raises(UnknownNodeError):
        graph.subgraph_nodes([0, 9])

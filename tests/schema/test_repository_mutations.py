"""Repository mutation tests: remove_tree, versioning, symmetric invalidation.

The regression pinned here: before the service PR, only ``add_tree``
invalidated the cached name index, and staleness was detected by comparing
node counts — so removing a tree (or swapping a tree for another of the same
size) could silently serve a stale index.  Mutations now bump a version
counter that every derived structure checks.
"""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.matchers.index import RepositoryNameIndex
from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository


def _tree(name: str, *children: str):
    builder = TreeBuilder(name)
    root = builder.root(name)
    for child in children:
        builder.child(root, child)
    return builder.build()


@pytest.fixture
def forest() -> SchemaRepository:
    repository = SchemaRepository(name="mutable")
    repository.add_tree(_tree("alpha", "name", "email"))
    repository.add_tree(_tree("beta", "title", "author"))
    repository.add_tree(_tree("gamma", "price", "name"))
    return repository


class TestRemoveTree:
    def test_remove_shifts_ids_offsets_and_counts(self, forest):
        removed = forest.remove_tree(1)
        assert removed.name == "beta"
        assert removed.tree_id == -1
        assert forest.tree_count == 2
        assert [tree.name for tree in forest.trees()] == ["alpha", "gamma"]
        assert [tree.tree_id for tree in forest.trees()] == [0, 1]
        assert forest.tree_offset(1) == forest.tree(0).node_count
        assert forest.node_count == sum(tree.node_count for tree in forest.trees())

    def test_removed_repository_equals_fresh_build(self, forest):
        forest.remove_tree(0)
        fresh = SchemaRepository(name="fresh")
        for name, children in (("beta", ("title", "author")), ("gamma", ("price", "name"))):
            fresh.add_tree(_tree(name, *children))
        assert [ref for ref in forest.node_refs()] == [ref for ref in fresh.node_refs()]
        assert [node.name for _, node in forest.iter_nodes()] == [
            node.name for _, node in fresh.iter_nodes()
        ]

    def test_removed_tree_can_be_registered_again(self, forest):
        removed = forest.remove_tree(2)
        new_id = forest.add_tree(removed)
        assert new_id == 2
        assert forest.tree(2) is removed

    def test_remove_unknown_tree_raises(self, forest):
        with pytest.raises(SchemaError):
            forest.remove_tree(3)
        with pytest.raises(SchemaError):
            forest.remove_tree(-1)

    def test_locate_after_removal(self, forest):
        forest.remove_tree(1)
        for ref in forest.node_refs():
            assert forest.locate(ref.global_id) == ref


class TestVersioningAndInvalidation:
    def test_every_mutation_bumps_the_version(self, forest):
        version = forest.version
        forest.add_tree(_tree("delta", "x"))
        assert forest.version == version + 1
        forest.remove_tree(3)
        assert forest.version == version + 2

    def test_add_invalidates_name_index(self, forest):
        assert forest.find_by_name("zeta") == []
        forest.add_tree(_tree("zeta", "name"))
        assert len(forest.find_by_name("zeta")) == 1

    def test_remove_invalidates_name_index(self, forest):
        assert len(forest.find_by_name("beta")) == 1
        forest.remove_tree(1)
        assert forest.find_by_name("beta") == []
        # Survivors are still found, at their shifted coordinates.
        (ref,) = forest.find_by_name("gamma")
        assert ref.tree_id == 1

    def test_equal_size_swap_is_detected(self, forest):
        """The node-count staleness check could not see this mutation pair."""
        stale = forest.name_index()
        node_count = forest.node_count
        forest.remove_tree(0)
        forest.add_tree(_tree("omega", "name", "email"))  # same node count as alpha
        assert forest.node_count == node_count
        fresh = forest.name_index()
        assert fresh is not stale
        assert forest.find_by_name("alpha") == []
        assert len(forest.find_by_name("omega")) == 1

    def test_install_rejects_stale_index(self, forest):
        index = RepositoryNameIndex.for_repository(forest)
        forest.add_tree(_tree("delta", "x"))
        with pytest.raises(SchemaError):
            forest.install_name_index(index)

    def test_install_accepts_incrementally_updated_index(self, forest):
        index = RepositoryNameIndex.for_repository(forest)
        tree_id = forest.add_tree(_tree("delta", "x"))
        forest.install_name_index(index.with_tree_added(forest, tree_id))
        assert forest.name_index().node_count == forest.node_count

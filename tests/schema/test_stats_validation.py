"""Tests for tree/repository statistics and structural validation."""

import pytest

from repro.errors import SchemaError
from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository
from repro.schema.stats import RepositoryStatistics, TreeStatistics
from repro.schema.validation import validate_repository, validate_tree


def test_tree_statistics_on_fig1(library_tree):
    stats = TreeStatistics.of(library_tree)
    assert stats.node_count == 7
    assert stats.element_count == 7
    assert stats.attribute_count == 0
    assert stats.leaf_count == 4
    assert stats.height == 3
    assert stats.max_fanout == 2
    assert stats.average_fanout == pytest.approx((2 + 2 + 2) / 3)
    assert 0 < stats.average_depth < 3


def test_repository_statistics(small_repository):
    stats = RepositoryStatistics.of(small_repository)
    assert stats.tree_count == 3
    assert stats.node_count == small_repository.node_count
    assert stats.min_tree_size <= stats.average_tree_size <= stats.max_tree_size
    assert stats.distinct_names > 5
    payload = stats.as_dict()
    assert payload["trees"] == 3
    assert payload["nodes"] == small_repository.node_count


def test_validate_tree_accepts_valid_tree(library_tree):
    validate_tree(library_tree)


def test_validate_tree_rejects_inconsistent_node_id(library_tree):
    library_tree.node(3).node_id = 99
    with pytest.raises(SchemaError):
        validate_tree(library_tree)


def test_validate_tree_rejects_corrupted_depth(library_tree):
    library_tree._depth[4] = 0
    with pytest.raises(SchemaError):
        validate_tree(library_tree)


def test_validate_tree_rejects_broken_child_link(library_tree):
    library_tree._children[1].remove(2)
    with pytest.raises(SchemaError):
        validate_tree(library_tree)


def test_validate_repository_accepts_valid(small_repository):
    validate_repository(small_repository)


def test_validate_repository_rejects_wrong_tree_id(small_repository):
    small_repository.tree(1).tree_id = 5
    with pytest.raises(SchemaError):
        validate_repository(small_repository)


def test_validate_repository_rejects_empty():
    with pytest.raises(SchemaError):
        validate_repository(SchemaRepository())

"""Tests for rooted schema trees, using the paper's Fig. 1 tree as the main case."""

import pytest

from repro.errors import SchemaError, UnknownNodeError
from repro.schema.node import SchemaNode
from repro.schema.tree import SchemaTree

# Node ids in the library_tree fixture (insertion order):
LIB, BOOK, DATA, AUTHOR_NAME, SHELF, TITLE, ADDRESS = range(7)


def test_single_root_enforced(library_tree):
    with pytest.raises(SchemaError):
        library_tree.add_root(SchemaNode(name="second-root"))


def test_counts_and_root(library_tree):
    assert library_tree.node_count == 7
    assert library_tree.edge_count == 6
    assert library_tree.root.name == "lib"
    assert library_tree.root_id == LIB


def test_parent_children_depth(library_tree):
    assert library_tree.parent_id(LIB) is None
    assert library_tree.parent_id(AUTHOR_NAME) == DATA
    assert library_tree.children_ids(BOOK) == [DATA, TITLE]
    assert library_tree.depth(LIB) == 0
    assert library_tree.depth(AUTHOR_NAME) == 3
    assert library_tree.height() == 3


def test_unknown_node_raises(library_tree):
    with pytest.raises(UnknownNodeError):
        library_tree.node(99)
    with pytest.raises(UnknownNodeError):
        library_tree.parent_id(99)


def test_leaves_and_is_leaf(library_tree):
    assert set(library_tree.leaves()) == {AUTHOR_NAME, SHELF, TITLE, ADDRESS}
    assert library_tree.is_leaf(SHELF)
    assert not library_tree.is_leaf(BOOK)


def test_preorder_visits_each_node_once_parent_first(library_tree):
    order = list(library_tree.preorder())
    assert sorted(order) == list(range(7))
    assert order[0] == LIB
    assert order.index(BOOK) < order.index(DATA) < order.index(AUTHOR_NAME)


def test_postorder_children_before_parent(library_tree):
    order = list(library_tree.postorder())
    assert sorted(order) == list(range(7))
    assert order.index(AUTHOR_NAME) < order.index(DATA) < order.index(BOOK)
    assert order[-1] == LIB


def test_breadth_first_by_level(library_tree):
    order = list(library_tree.breadth_first())
    assert order[0] == LIB
    assert set(order[1:3]) == {BOOK, ADDRESS}
    assert sorted(order) == list(range(7))


def test_subtree_ids_and_size(library_tree):
    assert set(library_tree.subtree_ids(DATA)) == {DATA, AUTHOR_NAME, SHELF}
    assert library_tree.subtree_size(BOOK) == 5
    assert library_tree.subtree_size(LIB) == 7


def test_ancestors_and_is_ancestor(library_tree):
    assert library_tree.ancestors(AUTHOR_NAME) == [DATA, BOOK, LIB]
    assert library_tree.ancestors(LIB) == []
    assert library_tree.is_ancestor(LIB, SHELF)
    assert library_tree.is_ancestor(SHELF, SHELF)  # ancestor-or-self semantics
    assert not library_tree.is_ancestor(TITLE, SHELF)


def test_lowest_common_ancestor(library_tree):
    assert library_tree.lowest_common_ancestor(AUTHOR_NAME, TITLE) == BOOK
    assert library_tree.lowest_common_ancestor(AUTHOR_NAME, SHELF) == DATA
    assert library_tree.lowest_common_ancestor(TITLE, ADDRESS) == LIB
    assert library_tree.lowest_common_ancestor(DATA, AUTHOR_NAME) == DATA


def test_distance_is_path_length(library_tree):
    # The paper's example path p' = data - book - title corresponds to distance 2.
    assert library_tree.distance(DATA, TITLE) == 2
    assert library_tree.distance(AUTHOR_NAME, SHELF) == 2
    assert library_tree.distance(AUTHOR_NAME, ADDRESS) == 4
    assert library_tree.distance(LIB, LIB) == 0


def test_path_node_ids_endpoints_and_length(library_tree):
    path = library_tree.path_node_ids(AUTHOR_NAME, TITLE)
    assert path[0] == AUTHOR_NAME and path[-1] == TITLE
    assert len(path) == library_tree.distance(AUTHOR_NAME, TITLE) + 1
    assert BOOK in path and DATA in path


def test_path_edge_ids_are_child_identified(library_tree):
    edges = library_tree.path_edge_ids(AUTHOR_NAME, TITLE)
    # Edges: data->authorName (id AUTHOR_NAME), book->data (DATA), book->title (TITLE).
    assert edges == {AUTHOR_NAME, DATA, TITLE}
    assert library_tree.path_edge_ids(LIB, LIB) == set()


def test_path_edges_union_models_mapping_subtree(library_tree):
    # Mapping of Fig. 1: book->n2', title->n5', author->n4'.  |Et| is the union
    # of the two mapped paths.
    to_title = library_tree.path_edge_ids(BOOK, TITLE)
    to_author = library_tree.path_edge_ids(BOOK, AUTHOR_NAME)
    assert len(to_title | to_author) == 3  # title, data, authorName edges


def test_to_graph_round_trip_shape(library_tree):
    graph = library_tree.to_graph()
    assert graph.node_count == library_tree.node_count
    assert graph.edge_count == library_tree.edge_count
    assert graph.is_tree()


def test_find_by_name_and_root_path(library_tree):
    assert library_tree.find_by_name("title") == [TITLE]
    assert library_tree.find_by_name("TITLE") == []
    assert library_tree.find_by_name("TITLE", case_sensitive=False) == [TITLE]
    assert library_tree.root_path_names(AUTHOR_NAME) == ["lib", "book", "data", "authorName"]

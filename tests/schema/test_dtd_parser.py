"""Tests for DTD ingestion."""

import pytest

from repro.errors import SchemaParseError
from repro.schema.node import DataType, NodeKind
from repro.schema.dtd_parser import DtdParser, parse_dtd

FIG1_DTD = """
<!-- The repository fragment of the paper's Fig. 1. -->
<!ELEMENT lib (book+, address)>
<!ELEMENT book (data, title)>
<!ELEMENT data (authorName, shelf)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authorName (#PCDATA)>
<!ELEMENT shelf (#PCDATA)>
<!ELEMENT address (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED>
"""

MULTI_ROOT_DTD = """
<!ELEMENT article (title, body)>
<!ELEMENT report (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>
"""

RECURSIVE_DTD = """
<!ELEMENT part (label, part*)>
<!ELEMENT label (#PCDATA)>
"""

ENTITY_DTD = """
<!ENTITY % contact "name, email">
<!ELEMENT person (%contact;)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT email (#PCDATA)>
"""


def test_fig1_dtd_structure():
    trees = parse_dtd(FIG1_DTD, schema_name="fig1")
    assert len(trees) == 1
    tree = trees[0]
    assert tree.root.name == "lib"
    assert sorted(tree.names()) == sorted(
        ["lib", "book", "data", "title", "authorName", "shelf", "address", "isbn"]
    )
    isbn = tree.node(tree.find_by_name("isbn")[0])
    assert isbn.kind is NodeKind.ATTRIBUTE
    author = tree.find_by_name("authorName")[0]
    assert tree.depth(author) == 3
    # Leaf elements get a string datatype (they carry #PCDATA content).
    assert tree.node(tree.find_by_name("title")[0]).datatype is DataType.STRING


def test_multiple_roots_yield_multiple_trees():
    trees = parse_dtd(MULTI_ROOT_DTD)
    assert {tree.root.name for tree in trees} == {"article", "report"}
    for tree in trees:
        assert "title" in tree.names() and "body" in tree.names()


def test_recursive_dtd_is_cut():
    trees = DtdParser(max_depth=5).parse(RECURSIVE_DTD)
    tree = trees[0]
    assert tree.root.name == "part"
    assert tree.height() <= 5


def test_parameter_entities_are_expanded():
    trees = parse_dtd(ENTITY_DTD)
    tree = next(t for t in trees if t.root.name == "person")
    assert "name" in tree.names() and "email" in tree.names()


def test_undeclared_child_becomes_leaf():
    trees = parse_dtd("<!ELEMENT a (b, c)> <!ELEMENT b (#PCDATA)>")
    tree = trees[0]
    assert "c" in tree.names()
    assert tree.is_leaf(tree.find_by_name("c")[0])


def test_fully_cyclic_dtd_still_produces_a_tree():
    trees = parse_dtd("<!ELEMENT a (b)> <!ELEMENT b (a)>")
    assert len(trees) == 1
    assert trees[0].node_count >= 2


def test_empty_dtd_raises():
    with pytest.raises(SchemaParseError):
        parse_dtd("<!-- nothing here -->")


def test_invalid_max_depth():
    with pytest.raises(SchemaParseError):
        DtdParser(max_depth=0)


def test_attlist_enumeration_type_is_string():
    trees = parse_dtd('<!ELEMENT a (#PCDATA)> <!ATTLIST a status (on|off) "on">')
    tree = trees[0]
    status = tree.node(tree.find_by_name("status")[0])
    assert status.kind is NodeKind.ATTRIBUTE
    assert status.datatype is DataType.STRING

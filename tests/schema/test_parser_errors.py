"""The parsers' typed error surface: every failure is a SchemaParseError.

The ingestion quarantine catches parse failures *by type* and records the
exception class as the quarantine reason, so the DTD/XSD parsers may never
leak ``xml.etree`` internals, ``OSError`` or ``UnicodeDecodeError`` — each
golden malformed fixture below must surface as :class:`SchemaParseError`.
"""

from __future__ import annotations

import pytest

from repro.errors import SchemaParseError
from repro.schema.dtd_parser import parse_dtd, parse_dtd_file
from repro.schema.xsd_parser import parse_xsd, parse_xsd_file

#: Golden malformed documents: (id, format, text, message fragment).
MALFORMED_FIXTURES = [
    ("dtd-empty", "dtd", "", "declares no elements"),
    ("dtd-comment-only", "dtd", "<!-- nothing declared -->", "declares no elements"),
    (
        "xsd-unclosed-tag",
        "xsd",
        "<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'><unclosed>",
        "invalid XML",
    ),
    ("xsd-not-xml", "xsd", "this is not XML at all", "invalid XML"),
    (
        "xsd-wrong-root",
        "xsd",
        "<catalog><book/></catalog>",
        "expected an xs:schema document",
    ),
    (
        "xsd-no-global-elements",
        "xsd",
        "<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'>"
        "<xs:complexType name='orphan'/></xs:schema>",
        "declares no global elements",
    ),
]


class TestMalformedDocuments:
    @pytest.mark.parametrize(
        "format_name, text, fragment",
        [(f, t, m) for _, f, t, m in MALFORMED_FIXTURES],
        ids=[fixture_id for fixture_id, _, _, _ in MALFORMED_FIXTURES],
    )
    def test_malformed_text_raises_schema_parse_error(self, format_name, text, fragment):
        parse = parse_dtd if format_name == "dtd" else parse_xsd
        with pytest.raises(SchemaParseError, match=fragment):
            parse(text, schema_name="fixture")

    def test_expat_value_errors_fold_into_schema_parse_error(self, monkeypatch):
        # Some expat builds reject str payloads with a ValueError instead of a
        # ParseError (e.g. on encoding declarations); the parser must fold
        # both into its one typed error.
        import xml.etree.ElementTree as ET

        import repro.schema.xsd_parser as xsd_parser

        def reject(text):
            raise ValueError("encoding declaration not supported")

        monkeypatch.setattr(xsd_parser.ET, "fromstring", reject)
        with pytest.raises(SchemaParseError, match="invalid XML"):
            parse_xsd("<irrelevant/>", schema_name="fixture")


class TestFileErrorSurface:
    @pytest.mark.parametrize("parse_file", [parse_dtd_file, parse_xsd_file])
    def test_missing_file_raises_schema_parse_error(self, tmp_path, parse_file):
        with pytest.raises(SchemaParseError, match="cannot read"):
            parse_file(tmp_path / "does-not-exist.dtd")

    @pytest.mark.parametrize(
        "suffix, parse_file", [(".dtd", parse_dtd_file), (".xsd", parse_xsd_file)]
    )
    def test_non_utf8_bytes_raise_schema_parse_error(self, tmp_path, suffix, parse_file):
        path = tmp_path / f"latin1{suffix}"
        path.write_bytes("<!ELEMENT caf\xe9 (#PCDATA)>".encode("latin-1"))
        with pytest.raises(SchemaParseError, match="not valid UTF-8"):
            parse_file(path)

    def test_directory_raises_schema_parse_error(self, tmp_path):
        with pytest.raises(SchemaParseError, match="cannot read"):
            parse_dtd_file(tmp_path)

    def test_bad_max_depth_is_typed(self):
        with pytest.raises(SchemaParseError, match="max_depth"):
            parse_dtd("<!ELEMENT a (#PCDATA)>", max_depth=0)
        with pytest.raises(SchemaParseError, match="max_depth"):
            parse_xsd("<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'/>", max_depth=0)

"""Tests for schema nodes and datatype parsing."""

import pytest

from repro.schema.node import DataType, NodeKind, SchemaNode, parse_datatype


def test_node_requires_a_name():
    with pytest.raises(ValueError):
        SchemaNode(name="")
    with pytest.raises(ValueError):
        SchemaNode(name="   ")


def test_node_defaults():
    node = SchemaNode(name="title")
    assert node.kind is NodeKind.ELEMENT
    assert node.datatype is DataType.UNKNOWN
    assert node.node_id == -1
    assert not node.is_attribute


def test_node_accepts_string_kind_and_type():
    node = SchemaNode(name="isbn", kind="attribute", datatype="string")
    assert node.kind is NodeKind.ATTRIBUTE
    assert node.datatype is DataType.STRING
    assert node.is_attribute


def test_node_property_bag():
    node = SchemaNode(name="book", properties={"minOccurs": "0"})
    assert node.property("minOccurs") == "0"
    assert node.property("missing", default=1) == 1


def test_node_copy_is_detached():
    node = SchemaNode(name="book", properties={"a": 1})
    node.node_id = 7
    clone = node.copy()
    assert clone.node_id == -1
    assert clone.name == "book"
    clone.properties["a"] = 2
    assert node.properties["a"] == 1


@pytest.mark.parametrize(
    "raw, expected",
    [
        ("xs:string", DataType.STRING),
        ("xsd:int", DataType.INTEGER),
        ("decimal", DataType.DECIMAL),
        ("xs:dateTime", DataType.DATETIME),
        ("CDATA", DataType.STRING),
        ("#PCDATA", DataType.STRING),
        ("ID", DataType.ID),
        ("IDREFS", DataType.IDREF),
        ("xs:anyURI", DataType.ANY_URI),
        (None, DataType.UNKNOWN),
        ("", DataType.UNKNOWN),
        ("someCustomType", DataType.UNKNOWN),
    ],
)
def test_parse_datatype(raw, expected):
    assert parse_datatype(raw) is expected

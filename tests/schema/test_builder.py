"""Tests for the fluent tree builder."""

import pytest

from repro.errors import SchemaError
from repro.schema.builder import TreeBuilder, personal_schema
from repro.schema.node import DataType, NodeKind


def test_builder_basic_tree():
    builder = TreeBuilder("personal")
    root = builder.root("book")
    title = builder.child(root, "title", datatype="string")
    builder.attribute(root, "isbn", datatype="ID")
    tree = builder.build()
    assert tree.node_count == 3
    assert tree.node(title).datatype is DataType.STRING
    assert tree.node(2).kind is NodeKind.ATTRIBUTE


def test_builder_rejects_empty_tree():
    with pytest.raises(SchemaError):
        TreeBuilder().build()


def test_builder_build_only_once():
    builder = TreeBuilder()
    builder.root("a")
    builder.build()
    with pytest.raises(SchemaError):
        builder.build()


def test_builder_rejects_unknown_parent():
    builder = TreeBuilder()
    builder.root("a")
    with pytest.raises(Exception):
        builder.child(42, "b")


def test_from_nested_with_lists_and_dicts():
    tree = TreeBuilder.from_nested({"book": ["title", {"author": ["name", "email"]}]})
    assert sorted(tree.names()) == ["author", "book", "email", "name", "title"]
    author_id = tree.find_by_name("author")[0]
    assert {tree.node(c).name for c in tree.children_ids(author_id)} == {"name", "email"}


def test_from_nested_with_string_leaf():
    tree = TreeBuilder.from_nested({"a": "b"})
    assert tree.names() == ["a", "b"]


def test_from_nested_requires_single_root():
    with pytest.raises(SchemaError):
        TreeBuilder.from_nested({"a": [], "b": []})


def test_from_nested_rejects_bad_entries():
    with pytest.raises(SchemaError):
        TreeBuilder.from_nested({"a": [42]})


def test_personal_schema_helper():
    tree = personal_schema({"contact": ["name", "email"]}, name="my-schema")
    assert tree.name == "my-schema"
    assert tree.root.name == "contact"
    assert tree.node_count == 3

"""Tests for the schema repository (forest with global node ids)."""

import pytest

from repro.errors import SchemaError, UnknownNodeError
from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository


def test_add_tree_assigns_ids_and_offsets(small_repository):
    assert small_repository.tree_count == 3
    assert [tree.tree_id for tree in small_repository.trees()] == [0, 1, 2]
    assert small_repository.tree_offset(0) == 0
    assert small_repository.tree_offset(1) == small_repository.tree(0).node_count
    assert small_repository.node_count == sum(t.node_count for t in small_repository.trees())


def test_cannot_register_tree_twice(small_repository, library_tree):
    with pytest.raises(SchemaError):
        small_repository.add_tree(library_tree)


def test_cannot_register_empty_tree():
    from repro.schema.tree import SchemaTree

    with pytest.raises(SchemaError):
        SchemaRepository().add_tree(SchemaTree("empty"))


def test_global_id_and_locate_round_trip(small_repository):
    for ref in small_repository.node_refs():
        located = small_repository.locate(ref.global_id)
        assert located == ref
        assert small_repository.global_id(ref.tree_id, ref.node_id) == ref.global_id


def test_locate_out_of_range(small_repository):
    with pytest.raises(UnknownNodeError):
        small_repository.locate(small_repository.node_count)
    with pytest.raises(UnknownNodeError):
        small_repository.locate(-1)


def test_node_accepts_ref_or_global_id(small_repository):
    ref = small_repository.ref(1, 2)
    by_ref = small_repository.node(ref)
    by_id = small_repository.node(ref.global_id)
    assert by_ref is by_id


def test_iter_nodes_covers_every_node(small_repository):
    refs = list(small_repository.iter_nodes())
    assert len(refs) == small_repository.node_count
    global_ids = [ref.global_id for ref, _ in refs]
    assert global_ids == sorted(global_ids)


def test_find_by_name_case_insensitive_by_default(small_repository):
    title_refs = small_repository.find_by_name("TITLE")
    assert len(title_refs) == 1
    assert small_repository.node(title_refs[0]).name == "title"
    assert small_repository.find_by_name("TITLE", case_sensitive=True) == []


def test_distance_within_and_across_trees(small_repository):
    lib_title = small_repository.find_by_name("title")[0]
    lib_address = small_repository.find_by_name("address")[0]
    if lib_title.tree_id == lib_address.tree_id:
        assert small_repository.distance(lib_title, lib_address) >= 1
    person_name = small_repository.find_by_name("name")[0]
    assert person_name.tree_id != lib_title.tree_id
    assert small_repository.distance(lib_title, person_name) is None


def test_summary(small_repository):
    summary = small_repository.summary()
    assert summary["trees"] == 3
    assert summary["nodes"] == small_repository.node_count
    assert summary["largest_tree"] >= summary["smallest_tree"] >= 1

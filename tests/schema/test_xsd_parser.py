"""Tests for XSD ingestion."""

import pytest

from repro.errors import SchemaParseError
from repro.schema.node import DataType, NodeKind
from repro.schema.xsd_parser import XsdParser, parse_xsd

SIMPLE_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="book">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="title" type="xs:string"/>
        <xs:element name="year" type="xs:int" minOccurs="0"/>
      </xs:sequence>
      <xs:attribute name="isbn" type="xs:ID" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""

NAMED_TYPE_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="library" type="LibraryType"/>
  <xs:complexType name="LibraryType">
    <xs:sequence>
      <xs:element name="book" type="BookType" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="BookType">
    <xs:sequence>
      <xs:element name="title" type="xs:string"/>
      <xs:element name="author" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>
"""

REF_AND_CHOICE_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="payment">
    <xs:complexType>
      <xs:choice>
        <xs:element ref="card"/>
        <xs:element name="cash" type="xs:decimal"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
  <xs:element name="card">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="number" type="xs:string"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""

RECURSIVE_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="part">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="label" type="xs:string"/>
        <xs:element ref="part" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>
"""


def test_simple_inline_complex_type():
    trees = parse_xsd(SIMPLE_XSD, schema_name="simple")
    assert len(trees) == 1
    tree = trees[0]
    assert tree.name == "simple#book"
    assert tree.root.name == "book"
    names = {tree.node(i).name: tree.node(i) for i in tree.node_ids()}
    assert set(names) == {"book", "title", "year", "isbn"}
    assert names["title"].datatype is DataType.STRING
    assert names["year"].datatype is DataType.INTEGER
    assert names["isbn"].kind is NodeKind.ATTRIBUTE
    assert names["year"].property("minOccurs") == "0"


def test_named_complex_types_are_resolved():
    trees = parse_xsd(NAMED_TYPE_XSD)
    # Only "library" is a global element root; BookType is expanded inside it.
    roots = {tree.root.name for tree in trees}
    assert "library" in roots
    library = next(tree for tree in trees if tree.root.name == "library")
    assert sorted(library.names()) == ["author", "book", "library", "title"]
    assert library.depth(library.find_by_name("title")[0]) == 2


def test_element_ref_and_choice_expansion():
    trees = parse_xsd(REF_AND_CHOICE_XSD)
    payment = next(tree for tree in trees if tree.root.name == "payment")
    assert "card" in payment.names()
    assert "number" in payment.names()
    assert "cash" in payment.names()
    # "card" is also a global element, so it yields its own tree.
    assert any(tree.root.name == "card" for tree in trees)


def test_recursion_is_cut_at_max_depth():
    trees = XsdParser(max_depth=4).parse(RECURSIVE_XSD)
    part = trees[0]
    assert part.height() <= 4
    assert part.node_count < 20


def test_invalid_xml_raises():
    with pytest.raises(SchemaParseError):
        parse_xsd("<xs:schema", schema_name="broken")


def test_non_schema_root_raises():
    with pytest.raises(SchemaParseError):
        parse_xsd("<foo/>")


def test_schema_without_global_elements_raises():
    with pytest.raises(SchemaParseError):
        parse_xsd('<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>')


def test_invalid_max_depth():
    with pytest.raises(SchemaParseError):
        XsdParser(max_depth=0)

"""Tests for JSON serialization of trees and repositories."""

import pytest

from repro.errors import SchemaError
from repro.schema.node import DataType, NodeKind
from repro.schema.serialization import (
    load_repository,
    repository_from_dict,
    repository_to_dict,
    save_repository,
    tree_from_dict,
    tree_to_dict,
)
from repro.schema.validation import validate_repository, validate_tree


def test_tree_round_trip(library_tree):
    payload = tree_to_dict(library_tree)
    rebuilt = tree_from_dict(payload)
    validate_tree(rebuilt)
    assert rebuilt.names() == library_tree.names()
    assert rebuilt.node_count == library_tree.node_count
    for node_id in library_tree.node_ids():
        assert rebuilt.parent_id(node_id) == library_tree.parent_id(node_id)
        assert rebuilt.node(node_id).kind == library_tree.node(node_id).kind
        assert rebuilt.node(node_id).datatype == library_tree.node(node_id).datatype


def test_repository_round_trip(small_repository):
    payload = repository_to_dict(small_repository)
    rebuilt = repository_from_dict(payload)
    validate_repository(rebuilt)
    assert rebuilt.tree_count == small_repository.tree_count
    assert rebuilt.node_count == small_repository.node_count
    assert [t.name for t in rebuilt.trees()] == [t.name for t in small_repository.trees()]


def test_file_round_trip(small_repository, tmp_path):
    path = tmp_path / "repo.json"
    save_repository(small_repository, path)
    loaded = load_repository(path)
    assert loaded.node_count == small_repository.node_count


def test_unknown_version_rejected(library_tree):
    payload = tree_to_dict(library_tree)
    payload["version"] = 999
    with pytest.raises(SchemaError):
        tree_from_dict(payload)
    repo_payload = {"version": 999, "trees": []}
    with pytest.raises(SchemaError):
        repository_from_dict(repo_payload)


def test_corrupt_parent_reference_rejected(library_tree):
    payload = tree_to_dict(library_tree)
    payload["nodes"][1]["parent"] = 5  # forward reference
    with pytest.raises(SchemaError):
        tree_from_dict(payload)


def test_non_first_root_rejected(library_tree):
    payload = tree_to_dict(library_tree)
    payload["nodes"][2]["parent"] = -1
    with pytest.raises(SchemaError):
        tree_from_dict(payload)


def test_empty_tree_payload_rejected():
    with pytest.raises(SchemaError):
        tree_from_dict({"version": 1, "name": "x", "nodes": []})

"""Property-based tests for schema trees (hypothesis).

Random trees are generated as parent-pointer arrays (each node's parent is an
earlier node), which is exactly the invariant the SchemaTree construction API
enforces; the properties then check traversals, distances and serialization on
arbitrary shapes rather than hand-picked examples.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.schema.node import SchemaNode
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.schema.tree import SchemaTree
from repro.schema.validation import validate_tree


@st.composite
def random_trees(draw, max_nodes: int = 40) -> SchemaTree:
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    tree = SchemaTree(name="random")
    tree.add_root(SchemaNode(name="n0"))
    for index in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        tree.add_child(parent, SchemaNode(name=f"n{index}"))
    return tree


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_random_trees_satisfy_structural_invariants(tree):
    validate_tree(tree)
    assert tree.edge_count == tree.node_count - 1


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_traversals_visit_every_node_exactly_once(tree):
    for order in (list(tree.preorder()), list(tree.postorder()), list(tree.breadth_first())):
        assert sorted(order) == list(tree.node_ids())


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_distance_is_a_metric_on_tree_nodes(tree, data):
    node_ids = list(tree.node_ids())
    u = data.draw(st.sampled_from(node_ids))
    v = data.draw(st.sampled_from(node_ids))
    w = data.draw(st.sampled_from(node_ids))
    assert tree.distance(u, u) == 0
    assert tree.distance(u, v) == tree.distance(v, u)
    assert tree.distance(u, w) <= tree.distance(u, v) + tree.distance(v, w)
    assert tree.distance(u, v) == len(tree.path_node_ids(u, v)) - 1
    assert tree.distance(u, v) == len(tree.path_edge_ids(u, v))


@given(random_trees(), st.data())
@settings(max_examples=60, deadline=None)
def test_lca_is_a_common_ancestor_of_maximal_depth(tree, data):
    node_ids = list(tree.node_ids())
    u = data.draw(st.sampled_from(node_ids))
    v = data.draw(st.sampled_from(node_ids))
    lca = tree.lowest_common_ancestor(u, v)
    assert tree.is_ancestor(lca, u)
    assert tree.is_ancestor(lca, v)
    # No child of the LCA is an ancestor of both.
    for child in tree.children_ids(lca):
        assert not (tree.is_ancestor(child, u) and tree.is_ancestor(child, v))


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip_preserves_structure(tree):
    rebuilt = tree_from_dict(tree_to_dict(tree))
    assert rebuilt.node_count == tree.node_count
    for node_id in tree.node_ids():
        assert rebuilt.parent_id(node_id) == tree.parent_id(node_id)


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_subtree_sizes_sum_to_descendant_counts(tree):
    # The size of every subtree equals 1 + sum of its children's subtree sizes.
    for node_id in tree.node_ids():
        children = tree.children_ids(node_id)
        assert tree.subtree_size(node_id) == 1 + sum(tree.subtree_size(c) for c in children)

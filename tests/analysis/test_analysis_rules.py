"""Golden fixture tests: each rule against its positive and negative fixtures."""

from repro.analysis.rules import PICKLE_BOUNDARY_ALLOWLIST
from repro.analysis.rules.pickle_boundary import PickleBoundaryChecker


def _by_file(report, suffix):
    return [f for f in report.findings if f.path.endswith(suffix)]


def _messages(findings):
    return [f.message for f in findings]


class TestDeterminismRPA001:
    def test_positive_fixture_flags_every_construct(self, run_fixture):
        report = run_fixture("rpa001", rules=("RPA001",))
        bad = _by_file(report, "bad_clock.py")
        messages = "\n".join(_messages(bad))
        assert len(bad) == 7
        assert "`time.time`" in messages
        assert "`time.time_ns`" in messages  # through `import time as t`
        assert "`random.uniform`" in messages
        assert "`shuffle` (from random import shuffle)" in messages
        assert "`random.Random()` without a seed" in messages
        assert "SystemRandom" in messages
        assert "`datetime.now`" in messages

    def test_negative_fixture_and_excluded_owners_are_clean(self, run_fixture):
        report = run_fixture("rpa001", rules=("RPA001",))
        assert _by_file(report, "good_clock.py") == []
        assert _by_file(report, "utils/rng.py") == []
        assert _by_file(report, "resilience/backoff.py") == []


class TestHashOrderRPA002:
    def test_positive_fixture_flags_every_construct(self, run_fixture):
        report = run_fixture("rpa002", rules=("RPA002",))
        bad = _by_file(report, "bad_order.py")
        messages = "\n".join(_messages(bad))
        assert len(bad) == 5
        assert "set comprehension" in messages
        assert "`str.join` over a bare set(...)" in messages
        assert ".keys() view" in messages
        assert "`list` over a bare set comprehension" in messages

    def test_negative_and_out_of_scope_files_are_clean(self, run_fixture):
        report = run_fixture("rpa002", rules=("RPA002",))
        assert _by_file(report, "good_order.py") == []
        assert _by_file(report, "out_of_scope.py") == []


class TestPickleBoundaryRPA003:
    def test_positive_fixture_flags_hooks_and_unpicklable_callables(self, run_fixture):
        report = run_fixture("rpa003", rules=("RPA003",))
        bad = _by_file(report, "bad_hooks.py")
        messages = "\n".join(_messages(bad))
        assert "UnauditedState customizes pickling (__getstate__)" in messages
        assert "lambda passed to `executor.map`" in messages
        assert "closure `work` passed to `executor.map`" in messages
        # module-level functions pickle fine and must not be flagged
        assert "fan_out" not in "".join(
            m for m in _messages(bad) if "closure" in m or "lambda" in m
        )

    def test_scoped_run_does_not_call_real_allowlist_entries_stale(self, run_fixture):
        report = run_fixture("rpa003", rules=("RPA003",))
        assert not any("stale allowlist entry" in m for m in _messages(report.findings))

    def test_allowlist_liveness_against_custom_allowlist(self, run_fixture):
        allowlist = {
            "repro.boundary.AuditedPayload": {"hooks": False, "why": "audited payload"},
            "repro.boundary.ClaimsHooks": {"hooks": True, "why": "claims hooks"},
            "repro.boundary.Vanished": {"hooks": True, "why": "no longer exists"},
        }
        report = run_fixture(
            "rpa003",
            rules=("RPA003",),
            checkers=[PickleBoundaryChecker(allowlist=allowlist)],
        )
        messages = "\n".join(_messages(report.findings))
        assert "stale allowlist entry: class repro.boundary.Vanished" in messages
        assert (
            "repro.boundary.ClaimsHooks is allowlisted as defining pickle hooks "
            "but defines none" in messages
        )
        assert (
            "repro.boundary.AuditedPayload is audited for default pickling but now "
            "defines __reduce__" in messages
        )

    def test_shipped_allowlist_entries_all_justified(self):
        for dotted, entry in PICKLE_BOUNDARY_ALLOWLIST.items():
            assert isinstance(entry["hooks"], bool), dotted
            assert entry["why"].strip(), f"{dotted} has no audit rationale"


class TestAsyncHygieneRPA004:
    def test_positive_fixture_flags_every_construct(self, run_fixture):
        report = run_fixture("rpa004", rules=("RPA004",))
        bad = _by_file(report, "bad_async.py")
        messages = "\n".join(_messages(bad))
        assert len(bad) == 5
        assert "blocking `time.sleep` inside async def handler" in messages
        assert "blocking `open()` inside async def handler" in messages
        assert "blocking file IO `.read_text()`" in messages
        assert "synchronous `self._lock.acquire()` inside async def guarded" in messages
        assert "held across an await in async def held" in messages

    def test_negative_fixture_is_clean(self, run_fixture):
        report = run_fixture("rpa004", rules=("RPA004",))
        assert _by_file(report, "good_async.py") == []


class TestCounterGlossaryRPA005:
    def test_both_drift_directions_and_non_literal_names(self, run_fixture):
        report = run_fixture(
            "rpa005", rules=("RPA005",), glossary_path="docs_glossary.md"
        )
        messages = "\n".join(_messages(report.findings))
        assert len(report.findings) == 3
        assert "counter `fixture_undocumented` is not documented" in messages
        assert "glossary documents counter `fixture_stale` but nothing increments it" in messages
        assert "not a string literal" in messages
        # names outside the "## Counter glossary" section are not glossary rows
        assert "outside_the_glossary" not in messages

    def test_stale_row_findings_anchor_in_the_glossary_file(self, run_fixture):
        report = run_fixture(
            "rpa005", rules=("RPA005",), glossary_path="docs_glossary.md"
        )
        stale = [f for f in report.findings if "fixture_stale" in f.message]
        assert stale and stale[0].path == "docs_glossary.md"
        assert stale[0].line > 1

    def test_missing_glossary_document_is_a_finding(self, run_fixture):
        report = run_fixture("rpa005", rules=("RPA005",), glossary_path="missing.md")
        (finding,) = report.findings
        assert finding.message == "counter glossary document not found"
        assert finding.path == "missing.md"


class TestWireDriftRPA006:
    def test_leaky_envelope_flags_all_four_drift_modes(self, run_fixture):
        report = run_fixture("rpa006", rules=("RPA006",))
        bad = [f for f in report.findings if "LeakyEnvelope" in f.message]
        messages = "\n".join(_messages(bad))
        assert len(bad) == 4
        assert "LeakyEnvelope.limit is a wire-eligible field but to_wire never" in messages
        assert "references `self.row_count`, which is not a field" in messages
        assert "to_wire emits key 'rows' that from_wire never reads" in messages
        assert "from_wire reads key 'limit' that to_wire never emits" in messages

    def test_clean_and_delegating_envelopes_pass(self, run_fixture):
        report = run_fixture("rpa006", rules=("RPA006",))
        assert not any("CleanEnvelope" in m for m in _messages(report.findings))
        assert not any("DelegatingEnvelope" in m for m in _messages(report.findings))


class TestSuppressionResolution:
    def test_valid_markers_silence_and_record_justifications(self, run_fixture):
        report = run_fixture("suppression", rules=("RPA002",))
        silenced = {
            (finding.line, justification) for finding, justification in report.suppressed
        }
        assert len(report.suppressed) == 2
        justs = "\n".join(j for _, j in silenced)
        assert "order folds into a set-valued digest downstream" in justs
        # standalone block markers concatenate their continuation lines
        assert "standalone block coverage for the construct on the next code line" in justs

    def test_marker_problems_and_unused_markers_are_findings(self, run_fixture):
        report = run_fixture("suppression", rules=("RPA002",))
        messages = _messages(report.findings)
        assert any("unused suppression of RPA002" in m for m in messages)
        assert any("invalid rule ids []" in m for m in messages)
        assert any("invalid rule ids ['NOPE']" in m for m in messages)
        assert any("no justification text" in m for m in messages)
        # the unjustified marker must NOT silence its finding
        assert any("`str.join` over a bare set(...)" in m for m in messages)

    def test_unused_markers_not_reported_when_their_rule_did_not_run(self, run_fixture):
        report = run_fixture("suppression", rules=("RPA001",))
        messages = _messages(report.findings)
        assert not any("unused suppression" in m for m in messages)
        # malformed-marker problems are parse errors and always surface
        assert any("invalid rule ids" in m for m in messages)

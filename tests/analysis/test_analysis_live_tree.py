"""Meta-test: the shipped tree passes its own invariant battery.

This is the test that gives the analysis suite teeth — a change that
introduces a wall-clock read on a deterministic path, a hash-ordered wire
field, or an undocumented counter fails here even if no behavioural test
happens to exercise the broken path.
"""

from repro.analysis.project import run_analysis
from repro.analysis.rules import rules_by_id


class TestLiveTree:
    def test_live_tree_is_clean(self, repo_root):
        report = run_analysis(repo_root)
        rendered = report.to_human()
        assert report.findings == [], f"live tree has findings:\n{rendered}"
        assert report.ok and report.exit_code() == 0
        assert report.files_checked > 100  # the scan actually covered the tree

    def test_live_suppressions_are_few_and_justified(self, repo_root):
        # Every in-tree suppression is a documented design exception; this
        # count only moves in a PR that argues for the new exception.
        report = run_analysis(repo_root)
        assert len(report.suppressed) == 2
        for finding, justification in report.suppressed:
            assert justification.strip(), f"{finding.location()} has no rationale"

    def test_battery_registers_all_six_rules(self):
        assert sorted(rules_by_id()) == [
            "RPA001",
            "RPA002",
            "RPA003",
            "RPA004",
            "RPA005",
            "RPA006",
        ]

"""Framework-level tests: path scoping, suppression parsing, import tracking."""

import ast

from repro.analysis.core import (
    FRAMEWORK_RULE,
    Finding,
    ImportTracker,
    Suppression,
    parse_suppressions,
    path_matches,
)


class TestPathMatches:
    def test_double_star_matches_subtree_and_directory_itself(self):
        assert path_matches("src/repro/mapping/engine.py", "src/repro/mapping/**")
        assert path_matches("src/repro/mapping", "src/repro/mapping/**")
        assert not path_matches("src/repro/mappings/x.py", "src/repro/mapping/**")

    def test_literal_and_glob(self):
        assert path_matches("src/repro/utils/rng.py", "src/repro/utils/rng.py")
        assert path_matches("benchmarks/bench_micro.py", "benchmarks/bench_*.py")
        assert not path_matches("src/repro/utils/rng.py", "src/repro/utils/executor.py")


class TestParseSuppressions:
    def test_trailing_marker_covers_its_own_line(self):
        source = 'value = risky()  # repro: allow[RPA001] seeded upstream via derive_seed\n'
        suppressions, problems = parse_suppressions("m.py", source)
        assert problems == []
        assert len(suppressions) == 1
        marker = suppressions[0]
        assert marker.line == 1
        assert marker.rules == ("RPA001",)
        assert marker.justification == "seeded upstream via derive_seed"

    def test_standalone_block_covers_next_code_line_and_joins_justification(self):
        source = (
            "def f():\n"
            "    # repro: allow[RPA002] the consumer re-sorts;\n"
            "    # continuation of the justification\n"
            "    return list({1, 2})\n"
        )
        suppressions, problems = parse_suppressions("m.py", source)
        assert problems == []
        (marker,) = suppressions
        assert marker.line == 4
        assert "continuation of the justification" in marker.justification

    def test_multiple_rule_ids(self):
        source = "x = f()  # repro: allow[RPA001, RPA004] both rules audited here\n"
        (marker,), problems = parse_suppressions("m.py", source)
        assert problems == []
        assert marker.rules == ("RPA001", "RPA004")

    def test_missing_justification_is_a_framework_finding(self):
        source = "x = f()  # repro: allow[RPA001]\n"
        suppressions, problems = parse_suppressions("m.py", source)
        assert suppressions == []
        (problem,) = problems
        assert problem.rule == FRAMEWORK_RULE
        assert "no justification" in problem.message

    def test_invalid_rule_id_is_a_framework_finding(self):
        source = "x = f()  # repro: allow[NOPE] why not\n"
        suppressions, problems = parse_suppressions("m.py", source)
        assert suppressions == []
        (problem,) = problems
        assert "invalid rule ids" in problem.message

    def test_malformed_marker_is_a_framework_finding(self):
        source = "x = f()  # repro: allow RPA001 forgot the brackets\n"
        suppressions, problems = parse_suppressions("m.py", source)
        assert suppressions == []
        (problem,) = problems
        assert "malformed suppression marker" in problem.message

    def test_marker_text_inside_strings_is_ignored(self):
        source = (
            '"""Docs may mention # repro: allow[RPA001] as an example."""\n'
            "PATTERN = 'repro: allow[RPA001] in a string'\n"
            "x = 1\n"
        )
        suppressions, problems = parse_suppressions("m.py", source)
        assert suppressions == []
        assert problems == []


class TestSuppressionCovers:
    def _finding(self, rule, line=3):
        return Finding(rule=rule, path="m.py", line=line, col=1, message="x")

    def test_covers_matching_rule_line_and_path(self):
        marker = Suppression(path="m.py", line=3, rules=("RPA001",), justification="why")
        assert marker.covers(self._finding("RPA001"))
        assert not marker.covers(self._finding("RPA002"))
        assert not marker.covers(self._finding("RPA001", line=4))

    def test_framework_rule_is_never_suppressible(self):
        marker = Suppression(
            path="m.py", line=3, rules=(FRAMEWORK_RULE,), justification="why"
        )
        assert not marker.covers(self._finding(FRAMEWORK_RULE))


class TestImportTracker:
    def test_module_aliases_and_member_origins(self):
        tree = ast.parse(
            "import time as t\n"
            "import random\n"
            "from random import shuffle as mix\n"
            "from datetime import datetime\n"
        )
        tracker = ImportTracker(("time", "random", "datetime")).scan(tree)
        assert tracker.is_module(ast.parse("t").body[0].value, "time")
        assert tracker.is_module(ast.parse("random").body[0].value, "random")
        assert not tracker.is_module(ast.parse("time").body[0].value, "time")
        assert tracker.member_origin("mix", "random") == "shuffle"
        assert tracker.member_origin("datetime", "datetime") == "datetime"
        assert tracker.member_origin("shuffle", "random") is None

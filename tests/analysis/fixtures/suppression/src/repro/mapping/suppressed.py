"""Suppression-handling fixture: used, unused, malformed, unjustified markers."""


def pinned(parts):
    return ",".join(set(parts))  # repro: allow[RPA002] order folds into a set-valued digest downstream


def block_marked(parts):
    # repro: allow[RPA002] the consumer re-sorts; this marker demonstrates
    # standalone block coverage for the construct on the next code line
    return list({p for p in parts})


def stale(parts):
    return sorted(parts)  # repro: allow[RPA002] nothing violates here, so this marker is unused


def broken(parts):
    return sorted(parts)  # repro: allow[] empty rule list


def bad_id(parts):
    return sorted(parts)  # repro: allow[NOPE] not a rule id


def unjustified(parts):
    return ",".join(set(parts))  # repro: allow[RPA002]

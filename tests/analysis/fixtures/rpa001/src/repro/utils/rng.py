"""The audited RNG owner — excluded from RPA001 by path."""

import random


def draw():
    return random.random()

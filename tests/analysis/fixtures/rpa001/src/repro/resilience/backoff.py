"""resilience/ owns its jitter and sleeps — excluded from RPA001 by path."""

import time


def wall():
    return time.time()

"""Golden positive fixture for RPA001 — every construct below is a finding."""

import random
import time
import time as t
from datetime import datetime
from random import shuffle


def stamp():
    return time.time()


def stamp_ns():
    return t.time_ns()


def jitter():
    return random.uniform(0.0, 1.0)


def shuffle_in_place(items):
    shuffle(items)


def fresh_rng():
    return random.Random()


def os_rng():
    return random.SystemRandom()


def today():
    return datetime.now()

"""Golden negative fixture for RPA001 — monotonic clocks and seeded RNGs only."""

import random
import time


def elapsed(start):
    return time.monotonic() - start


def timer():
    return time.perf_counter()


def seeded(seed):
    return random.Random(seed)

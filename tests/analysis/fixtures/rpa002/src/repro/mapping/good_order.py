"""Golden negative fixture for RPA002 — pinned or order-insensitive only."""


def ranked(candidates):
    return [name for name in sorted({c.name for c in candidates})]


def totals(table):
    return {key: table[key] for key in table}


def best(scores):
    return max(set(scores))


def merged(left, right):
    return sorted(set(left) | set(right))

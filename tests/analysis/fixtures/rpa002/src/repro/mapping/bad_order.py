"""Golden positive fixture for RPA002 — every construct below is a finding."""


def ranked(candidates):
    out = []
    for name in {c.name for c in candidates}:
        out.append(name)
    return out


def signature(parts):
    return ",".join(set(parts))


def keys_of(table):
    return [key for key in table.keys()]


def pairs(items):
    for index, item in enumerate(set(items)):
        yield index, item


def as_list(values):
    return list({v for v in values})

"""Outside RPA002's mapping/shard/api scope — never flagged."""


def centroids(points):
    return list({p for p in points})

"""Counter-glossary fixture for RPA005 (paired with docs_glossary.md)."""


class Engine:
    def __init__(self, counters):
        self.counters = counters

    def step(self, name):
        self.counters.increment("fixture_documented")
        self.counters.increment("fixture_undocumented")
        self.counters.increment(name)


def record(counters):
    counters.set("fixture_documented", 1)

"""Allowlist-liveness fixture for RPA003 (paired with a custom allowlist)."""


class AuditedPayload:
    """Allowlisted as hooks=False in the test allowlist, but grew a hook."""

    def __reduce__(self):
        return (AuditedPayload, ())


class ClaimsHooks:
    """Allowlisted as hooks=True in the test allowlist, but defines none."""

    def run(self):
        return None

"""Golden positive fixture for RPA003 — hooks and unpicklable callables."""


class UnauditedState:
    def __getstate__(self):
        return {}


def fan_out(executor, items):
    return executor.map(lambda item: item * 2, items)


def fan_out_closure(executor, items):
    def work(item):
        return item + 1

    return executor.map(work, items)


def fan_out_module_fn(executor, items):
    return executor.map(fan_out, items)

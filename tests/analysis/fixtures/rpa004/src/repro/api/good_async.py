"""Golden negative fixture for RPA004 — offloaded, awaited, or sync-only."""

import asyncio
import time


async def handler(loop, work):
    return await loop.run_in_executor(None, work)


async def locked(self):
    async with self._alock:
        await asyncio.sleep(0)


async def acquire_async(self):
    await self._alock.acquire()


def sync_helper():
    time.sleep(0.1)


async def outer():
    def later():
        time.sleep(0.1)

    return later

"""Golden positive fixture for RPA004 — every construct below is a finding."""

import asyncio
import time
from pathlib import Path


async def handler(request):
    time.sleep(0.1)
    data = open("payload.json").read()
    text = Path("payload.json").read_text()
    return request, data, text


async def guarded(self):
    self._lock.acquire()
    try:
        return self.state
    finally:
        self._lock.release()


async def held(self):
    with self._lock:
        await asyncio.sleep(0)

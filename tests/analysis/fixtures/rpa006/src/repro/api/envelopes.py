"""Wire-drift fixture for RPA006: one leaky codec, two clean ones."""

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LeakyEnvelope:
    kind = "leaky"
    query: str
    limit: int
    _cache: Dict[str, object] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, object]:
        return {"v": 1, "kind": self.kind, "query": self.query, "rows": self.row_count}

    @classmethod
    def from_wire(cls, wire):
        return cls(query=str(wire["query"]), limit=int(wire.get("limit", 0)))


@dataclass
class CleanEnvelope:
    kind = "clean"
    query: str
    limit: int = 10
    digest: str = field(default="", compare=False)

    def to_wire(self) -> Dict[str, object]:
        return {"v": 1, "kind": self.kind, "query": self.query, "limit": self.limit}

    @classmethod
    def from_wire(cls, wire):
        return cls(query=str(wire["query"]), limit=int(wire.get("limit", 10)))


def _decode(cls, wire):
    return cls(payload=str(wire.get("payload", "")))


@dataclass
class DelegatingEnvelope:
    payload: str

    def to_wire(self) -> Dict[str, object]:
        return {"v": 1, "payload": self.payload}

    @classmethod
    def from_wire(cls, wire):
        return _decode(cls, wire)

"""CLI behaviour of ``python -m repro.analysis``: exit codes, formats, --out."""

import json

from repro.analysis.__main__ import main
from repro.analysis.report import REPORT_SCHEMA_VERSION


class TestExitCodes:
    def test_findings_exit_nonzero(self, fixtures_dir, capsys):
        code = main(["--root", str(fixtures_dir / "rpa002"), "--rules", "RPA002"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPA002" in out and "finding(s)" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n", encoding="utf-8")
        code = main(["--root", str(tmp_path), "--rules", "RPA002"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_rule_id_exits_two(self, fixtures_dir, capsys):
        code = main(["--root", str(fixtures_dir / "rpa002"), "--rules", "RPA999"])
        assert code == 2
        assert "unknown rule id(s) RPA999" in capsys.readouterr().err

    def test_missing_root_exits_two(self, tmp_path, capsys):
        code = main(["--root", str(tmp_path / "nope")])
        assert code == 2
        assert "is not a directory" in capsys.readouterr().err


class TestFormats:
    def test_json_format_is_the_artifact_schema(self, fixtures_dir, capsys):
        code = main(
            ["--root", str(fixtures_dir / "rpa002"), "--rules", "RPA002", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["counts"]["RPA002"] == 5
        assert all(f["rule"] == "RPA002" for f in payload["findings"])

    def test_out_writes_the_rendered_report(self, fixtures_dir, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        main(
            [
                "--root",
                str(fixtures_dir / "rpa002"),
                "--rules",
                "RPA002",
                "--format",
                "json",
                "--out",
                str(out_file),
            ]
        )
        stdout = capsys.readouterr().out
        assert json.loads(out_file.read_text(encoding="utf-8")) == json.loads(stdout)

    def test_list_rules_names_every_registered_rule(self, capsys):
        code = main(["--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in ("RPA001", "RPA002", "RPA003", "RPA004", "RPA005", "RPA006"):
            assert rule in out
        assert "scope:" in out

"""Report rendering and the versioned JSON schema round-trip."""

import json

import pytest

from repro.analysis.core import Finding
from repro.analysis.report import REPORT_SCHEMA_VERSION, Report, report_from_json


def _sample_report():
    findings = [
        Finding(
            rule="RPA001",
            path="src/repro/x.py",
            line=10,
            col=5,
            message="wall-clock read `time.time`",
            hint="use time.monotonic",
        ),
        Finding(rule="RPA002", path="src/repro/y.py", line=3, col=1, message="bare set"),
    ]
    suppressed = [
        (
            Finding(rule="RPA003", path="src/repro/z.py", line=7, col=1, message="closure"),
            "in-process by contract",
        )
    ]
    return Report(
        root="/repo",
        rules=["RPA001", "RPA002", "RPA003"],
        files_checked=42,
        findings=findings,
        suppressed=suppressed,
    )


class TestReport:
    def test_ok_and_exit_code(self):
        dirty = _sample_report()
        assert not dirty.ok and dirty.exit_code() == 1
        clean = Report(root="/repo", rules=["RPA001"], files_checked=1, findings=[])
        assert clean.ok and clean.exit_code() == 0

    def test_counts_by_rule(self):
        assert _sample_report().counts_by_rule() == {"RPA001": 1, "RPA002": 1}

    def test_human_rendering(self):
        text = _sample_report().to_human()
        assert "src/repro/x.py:10:5: RPA001: wall-clock read `time.time`" in text
        assert "hint: use time.monotonic" in text
        assert "1 suppressed finding(s):" in text
        assert "RPA003 allowed — in-process by contract" in text
        assert "checked 42 file(s)" in text
        assert "2 finding(s)" in text

    def test_human_rendering_clean(self):
        clean = Report(root="/repo", rules=["RPA001"], files_checked=7, findings=[])
        assert clean.to_human().endswith("checked 7 file(s) under /repo: clean")


class TestJsonSchema:
    def test_round_trip(self):
        original = _sample_report()
        payload = json.loads(original.to_json())
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["counts"] == {"RPA001": 1, "RPA002": 1}
        rebuilt = report_from_json(payload)
        assert rebuilt.root == original.root
        assert rebuilt.rules == original.rules
        assert rebuilt.files_checked == original.files_checked
        assert rebuilt.findings == original.findings
        assert rebuilt.suppressed == original.suppressed

    def test_unknown_schema_version_rejected(self):
        payload = json.loads(_sample_report().to_json())
        payload["schema_version"] = REPORT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="unsupported report schema version"):
            report_from_json(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            report_from_json([1, 2, 3])

    def test_finding_json_round_trip_defaults_hint(self):
        finding = Finding(rule="RPA004", path="a.py", line=1, col=2, message="m")
        payload = finding.to_json()
        del payload["hint"]
        assert Finding.from_json(payload) == finding

"""Shared helpers for the analysis-suite tests: fixture-tree runners."""

from pathlib import Path

import pytest

from repro.analysis.project import AnalysisConfig, AnalysisProject
from repro.analysis.rules import default_checkers

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _run_fixture(name, *, rules=None, glossary_path="docs/ARCHITECTURE.md", checkers=None):
    """Run the battery (or a subset) over ``tests/analysis/fixtures/<name>``."""
    config = AnalysisConfig(
        root=FIXTURES / name,
        scan_roots=("src",),
        glossary_path=glossary_path,
        rules=rules,
    )
    project = AnalysisProject(
        config=config,
        checkers=list(checkers) if checkers is not None else default_checkers(),
    )
    return project.run()


@pytest.fixture
def run_fixture():
    return _run_fixture


@pytest.fixture
def fixtures_dir():
    return FIXTURES


@pytest.fixture
def repo_root():
    return REPO_ROOT

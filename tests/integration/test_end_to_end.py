"""End-to-end integration tests over the synthetic workload and the bundled corpus.

These exercise the full pipeline exactly as the examples and benchmarks do, and
encode the paper's headline claims as assertions:

1. clustered matching never invents mappings (its results are a subset of the
   exhaustive, non-clustered results);
2. clustered matching reduces the search space and the partial-mapping count;
3. the loss of mappings is concentrated among low-ranked mappings — the
   preservation fraction at high thresholds dominates the fraction at δ.
"""

import pytest

from repro import Bellflower, clustering_variant
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.system.metrics import preservation_curve
from repro.workload import book_personal_schema, load_bundled_corpus


@pytest.fixture(scope="module")
def variant_results(synthetic_repository, synthetic_personal_schema):
    """One match result per clustering variant over the shared synthetic workload."""
    results = {}
    candidates = None
    for name in ("tree", "small", "medium", "large"):
        system = Bellflower(
            synthetic_repository,
            clusterer=clustering_variant(name).make_clusterer(),
            element_threshold=0.45,
            delta=0.75,
            variant_name=name,
        )
        if candidates is None:
            candidates = system.element_matching(synthetic_personal_schema)
        results[name] = system.match(synthetic_personal_schema, candidates=candidates)
    return results


class TestPaperClaims:
    def test_clustered_mappings_are_a_subset_of_exhaustive(self, variant_results):
        reference = variant_results["tree"].signatures()
        for name in ("small", "medium", "large"):
            assert variant_results[name].signatures() <= reference

    def test_search_space_and_partials_shrink_with_clustering(self, variant_results):
        reference = variant_results["tree"]
        for name in ("small", "medium", "large"):
            clustered = variant_results[name]
            assert clustered.search_space <= reference.search_space
            assert clustered.partial_mappings <= reference.partial_mappings
        assert variant_results["small"].search_space < reference.search_space

    def test_high_ranked_mappings_preserved_preferentially(self, variant_results):
        reference = variant_results["tree"].mappings
        for name in ("small", "medium", "large"):
            curve = preservation_curve(reference, variant_results[name].mappings, (0.75, 0.9))
            at_delta, at_high = curve[0].fraction, curve[1].fraction
            assert at_high >= at_delta - 1e-9

    def test_scores_identical_for_preserved_mappings(self, variant_results):
        reference_scores = {m.signature(): m.score for m in variant_results["tree"].mappings}
        for name in ("small", "medium", "large"):
            for mapping in variant_results[name].mappings:
                assert mapping.score == pytest.approx(reference_scores[mapping.signature()])

    def test_every_reported_mapping_clears_delta(self, variant_results):
        for result in variant_results.values():
            assert all(mapping.score >= 0.75 for mapping in result.mappings)


class TestGeneratorsAgreeEndToEnd:
    def test_bnb_equals_exhaustive_through_the_full_pipeline(
        self, synthetic_repository, synthetic_personal_schema, synthetic_candidates
    ):
        bnb_system = Bellflower(
            synthetic_repository,
            generator=BranchAndBoundGenerator(),
            element_threshold=0.45,
            delta=0.8,
        )
        exhaustive_system = Bellflower(
            synthetic_repository,
            generator=ExhaustiveGenerator(),
            element_threshold=0.45,
            delta=0.8,
        )
        bnb = bnb_system.match(synthetic_personal_schema, candidates=synthetic_candidates)
        exhaustive = exhaustive_system.match(synthetic_personal_schema, candidates=synthetic_candidates)
        assert bnb.signatures() == exhaustive.signatures()
        assert bnb.partial_mappings <= exhaustive.partial_mappings


class TestBundledCorpusEndToEnd:
    def test_book_query_finds_library_and_bookstore(self):
        repository = load_bundled_corpus()
        system = Bellflower(repository, element_threshold=0.4, delta=0.6)
        result = system.match(book_personal_schema())
        assert result.mapping_count >= 1
        tree_names = {repository.tree(m.tree_id).name for m in result.mappings}
        assert any("library" in name for name in tree_names)

    def test_clustering_the_corpus_still_finds_the_best_mapping(self):
        repository = load_bundled_corpus()
        baseline = Bellflower(repository, element_threshold=0.4, delta=0.6)
        reference = baseline.match(book_personal_schema())
        clustered_system = Bellflower(
            repository,
            clusterer=clustering_variant("medium").make_clusterer(),
            element_threshold=0.4,
            delta=0.6,
        )
        clustered = clustered_system.match(book_personal_schema(), candidates=reference.candidates)
        assert clustered.mappings
        assert clustered.mappings[0].score == pytest.approx(reference.mappings[0].score)

"""The kernel behind ``FuzzyNameMatcher.batch_scores`` must be invisible.

Score tables, counters and memo behaviour with the vectorized kernel engaged
must equal the forced-scalar fallback exactly — the kernel is an execution
detail, not a semantic switch.
"""

from __future__ import annotations

import struct

import pytest

from repro.kernels.strings import HAVE_NUMPY
from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector
from repro.utils.counters import CounterSet

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def force_scalar(monkeypatch):
    import repro.matchers.name as name_module

    monkeypatch.setattr(name_module, "batch_fuzzy_scores", lambda *args: None)


def table_bits(scores):
    return [(name_id, struct.pack("<d", score)) for name_id, score in scores.items()]


@pytest.mark.parametrize("threshold", [0.0, 0.4, 0.6, 1.0])
def test_batch_scores_equal_forced_scalar(small_repository, threshold, monkeypatch):
    kernel_matcher = FuzzyNameMatcher()
    kernel_index = kernel_matcher.name_index(small_repository)
    kernel_counters = CounterSet()
    kernel = kernel_matcher.batch_scores("name", kernel_index, threshold, kernel_counters)

    force_scalar(monkeypatch)
    scalar_matcher = FuzzyNameMatcher()
    scalar_index = scalar_matcher.name_index(small_repository)
    scalar_counters = CounterSet()
    scalar = scalar_matcher.batch_scores("name", scalar_index, threshold, scalar_counters)

    assert table_bits(kernel) == table_bits(scalar)
    assert kernel_counters.as_dict() == scalar_counters.as_dict()


def test_selector_output_identical_with_and_without_kernel(
    paper_schema, small_repository, monkeypatch
):
    def run():
        selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.4)
        candidates = selector.select(paper_schema, small_repository)
        return [
            (
                node_id,
                [
                    (e.ref.global_id, struct.pack("<d", e.similarity))
                    for e in candidates.elements_for(node_id)
                ],
            )
            for node_id in candidates.personal_node_ids
        ]

    with_kernel = run()
    force_scalar(monkeypatch)
    without_kernel = run()
    assert with_kernel == without_kernel


def test_packed_table_is_cached_and_survives_reuse(small_repository):
    matcher = FuzzyNameMatcher()
    index = matcher.name_index(small_repository)
    first = index.packed_name_table()
    second = index.packed_name_table()
    assert first is not None
    assert first is second  # built once, reused


def test_packed_table_not_pickled_with_index(small_repository):
    import pickle

    matcher = FuzzyNameMatcher()
    index = matcher.name_index(small_repository)
    assert index.packed_name_table() is not None
    clone = pickle.loads(pickle.dumps(index))
    # the clone rebuilds its own table lazily rather than shipping arrays
    assert "_packed_names" not in clone.__dict__ or clone.__dict__["_packed_names"] is None
    rebuilt = clone.packed_name_table()
    assert rebuilt is not None
    assert list(rebuilt.lengths) == list(index.packed_name_table().lengths)


def test_kernel_skips_tiny_repositories_gracefully(small_repository):
    # The small fixture's unique-name count per query is usually under
    # MIN_BATCH_SIZE, so this mostly exercises the decline -> scalar path;
    # either way the scores must satisfy the threshold contract.
    matcher = FuzzyNameMatcher()
    index = matcher.name_index(small_repository)
    scores = matcher.batch_scores("address", index, 0.5)
    for name_id, score in scores.items():
        assert score >= 0.5
        assert 0.0 < score <= 1.0

"""Differential tests: the packed bound table vs ``fast_bound`` / ``bound``.

The table bakes ``(1 - alpha) * path_similarity(schema, e)`` per edge count
and must reproduce ``fast_bound`` bit for bit — the search engine consults it
on every expansion, so a single differing ulp could change which branches are
pruned and therefore the produced ranking.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.objective import PackedBoundTable, bellflower_bound_table
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.model import MappingProblem
from repro.objective.bellflower import (
    BellflowerObjective,
    NameOnlyObjective,
    PathOnlyObjective,
)
from repro.schema.builder import TreeBuilder


def chain_schema(node_count: int):
    builder = TreeBuilder(f"chain-{node_count}")
    node = builder.root("n0")
    for i in range(1, node_count):
        node = builder.child(node, f"n{i}")
    return builder.build()


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


alphas = st.sampled_from([0.0, 0.1, 0.25, 0.5, 0.6180339887, 0.75, 1.0])
normalizations = st.sampled_from([0.5, 1.0, 3.0, 4.0, 10.0])
similarities = st.floats(min_value=-2.0, max_value=20.0, allow_nan=False, width=64)


@given(
    alphas,
    normalizations,
    st.integers(min_value=1, max_value=9),
    similarities,
    similarities,
    st.integers(min_value=0, max_value=40),
)
@settings(max_examples=400, deadline=None)
def test_table_bound_bit_identical_to_fast_bound(
    alpha, normalization, node_count, assigned, remaining, edge_count
):
    schema = chain_schema(node_count)
    objective = BellflowerObjective(alpha=alpha, path_normalization=normalization)
    table = objective.bound_table(schema)
    assert table is not None
    expected = objective.fast_bound(schema, assigned, remaining, edge_count)
    actual = table.bound(assigned + remaining, edge_count)
    assert bits(actual) == bits(expected)


@given(
    alphas,
    st.integers(min_value=2, max_value=6),
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=20),
)
@settings(max_examples=200, deadline=None)
def test_table_lazy_extension_is_order_independent(alpha, node_count, edge_counts):
    """Asking for edge counts in any order yields the same entries as ascending."""
    schema = chain_schema(node_count)
    objective = BellflowerObjective(alpha=alpha)
    shuffled = objective.bound_table(schema)
    ascending = objective.bound_table(schema)
    for edge_count in edge_counts:
        assert bits(shuffled.bound(1.0, edge_count)) == bits(
            objective.fast_bound(schema, 1.0, 0.0, edge_count)
        )
    for edge_count in sorted(edge_counts):
        assert bits(ascending.bound(1.0, edge_count)) == bits(
            objective.fast_bound(schema, 1.0, 0.0, edge_count)
        )


def test_table_clamps_similarity_like_fast_bound():
    schema = chain_schema(3)
    objective = BellflowerObjective(alpha=0.7)
    table = objective.bound_table(schema)
    # above the unit interval: optimistic similarity 10 over 3 nodes
    assert bits(table.bound(10.0, 2)) == bits(objective.fast_bound(schema, 10.0, 0.0, 2))
    # below it: negative optimistic similarity
    assert bits(table.bound(-1.0, 2)) == bits(objective.fast_bound(schema, -1.0, 0.0, 2))
    # clamp boundaries are exact
    assert bits(table.bound(3.0, 2)) == bits(objective.fast_bound(schema, 3.0, 0.0, 2))
    assert bits(table.bound(0.0, 2)) == bits(objective.fast_bound(schema, 0.0, 0.0, 2))


def test_table_single_node_schema_path_term_is_trivial():
    schema = chain_schema(1)
    objective = BellflowerObjective(alpha=0.5)
    table = objective.bound_table(schema)
    for edge_count in (0, 1, 5):
        assert bits(table.bound(0.5, edge_count)) == bits(
            objective.fast_bound(schema, 0.5, 0.0, edge_count)
        )


def test_name_only_and_path_only_objectives_get_tables():
    schema = chain_schema(4)
    for objective in (NameOnlyObjective(), PathOnlyObjective(path_normalization=2.0)):
        table = objective.bound_table(schema)
        assert table is not None
        for edge_count in range(8):
            assert bits(table.bound(2.5, edge_count)) == bits(
                objective.fast_bound(schema, 2.5, 0.0, edge_count)
            )


def test_subclass_overriding_fast_bound_declines():
    class LooserBound(BellflowerObjective):
        def fast_bound(self, schema, assigned, remaining, edge_count):
            return 1.0

    assert LooserBound().bound_table(chain_schema(3)) is None
    assert bellflower_bound_table(LooserBound(), chain_schema(3)) is None


def test_subclass_overriding_path_similarity_declines():
    class CustomPath(BellflowerObjective):
        def path_similarity(self, schema, target_edge_count):
            return 0.5

    assert CustomPath().bound_table(chain_schema(3)) is None


def test_plain_subclass_inheriting_both_pieces_gets_a_table():
    class Renamed(BellflowerObjective):
        pass

    schema = chain_schema(3)
    objective = Renamed(alpha=0.3)
    table = objective.bound_table(schema)
    assert table is not None
    assert bits(table.bound(1.5, 4)) == bits(objective.fast_bound(schema, 1.5, 0.0, 4))


def test_empty_schema_declines():
    class EmptySchema:
        node_count = 0
        edge_count = 0

    assert bellflower_bound_table(BellflowerObjective(), EmptySchema()) is None


def test_base_objective_hook_returns_none_by_default():
    from repro.objective.base import ObjectiveFunction

    class Minimal(ObjectiveFunction):
        name = "minimal"

        def evaluate(self, personal_schema, assignment, target_edge_count):
            raise NotImplementedError

        def bound(self, personal_schema, assignment, best_remaining_similarity, partial_target_edge_count):
            raise NotImplementedError

    assert Minimal().bound_table(chain_schema(2)) is None


def test_packed_table_golden_terms():
    # alpha = 0.5, K = 4, chain of 4 nodes (3 edges): term(e) =
    # 0.5 * clamp(1 - (e - 3) / 12).  Pin a few exact values.
    schema = chain_schema(4)
    objective = BellflowerObjective(alpha=0.5, path_normalization=4.0)
    table = objective.bound_table(schema)
    assert isinstance(table, PackedBoundTable)
    assert table.bound(0.0, 3) == 0.5  # path term alone, undistorted subtree
    assert table.bound(0.0, 15) == 0.0  # fully stretched: clamped to 0
    assert table.bound(4.0, 3) == 1.0  # perfect similarity + perfect path
    assert bits(table.bound(2.0, 6)) == bits(objective.fast_bound(schema, 2.0, 0.0, 6))


# -- engine integration: the table must not change a single search result ---------


def _search_signature(result):
    return [
        (bits(m.score), m.tree_id, tuple(sorted(m.repository_global_ids())))
        for m in result.mappings
    ]


@pytest.mark.parametrize("top_k", [None, 3])
def test_search_with_and_without_table_is_identical(
    paper_schema, small_candidates, small_oracle, top_k
):
    class NoTable(BellflowerObjective):
        # overriding fast_bound (with the inherited body) disables the table
        def fast_bound(self, schema, assigned, remaining, edge_count):
            return super().fast_bound(schema, assigned, remaining, edge_count)

    generator = BranchAndBoundGenerator()
    results = []
    for objective in (BellflowerObjective(alpha=0.5), NoTable(alpha=0.5)):
        problem = MappingProblem(
            personal_schema=paper_schema,
            candidates=small_candidates,
            oracle=small_oracle,
            objective=objective,
            delta=0.0,
            top_k=top_k,
        )
        results.append(generator.generate(problem))
    with_table, without_table = results
    assert _search_signature(with_table) == _search_signature(without_table)
    assert with_table.counters.as_dict() == without_table.counters.as_dict()

"""Differential tests: the batched string kernel vs the scalar reference.

The vectorized kernel's contract is *bit-identity*: for every input it
accepts, :func:`batch_fuzzy_scores` must return exactly the dict the scalar
``fuzzy_similarity`` loop builds — same keys, same float bits, same insertion
order — and the underlying batched DP must produce the exact unrestricted
Damerau–Levenshtein distances.  Anything the kernel cannot reproduce exactly
it must decline (return ``None``), never approximate.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels.strings import (
    HAVE_NUMPY,
    MAX_PACKED_LEN,
    MIN_BATCH_SIZE,
    PackedNameTable,
    _batch_damerau,
    batch_fuzzy_scores,
    scalar_fuzzy_scores,
)
from repro.matchers.string_metrics import (
    bounded_damerau_levenshtein,
    damerau_levenshtein_distance,
    edit_budget,
    fuzzy_similarity,
)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")

if HAVE_NUMPY:
    import numpy as np

words = st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12)
# A tiny alphabet maximizes transpositions and look-back hits — the cases
# where the unrestricted recurrence differs from the simpler OSA variant and
# where the vectorized last_row/last_match_column state is most stressed.
dense_words = st.text(alphabet=st.sampled_from("abc"), max_size=10)
unicode_words = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=8
)
thresholds = st.sampled_from([0.0, 0.2, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0])


def batch_distances(query: str, keys):
    """Distances of ``query`` against every key via the vectorized DP.

    Replicates the alphabet mapping of ``batch_fuzzy_scores`` so the DP can
    be probed directly, without threshold filtering.
    """
    table = PackedNameTable.build(keys)
    assert table is not None
    qcodes = np.frombuffer(query.encode("utf-32-le"), dtype="<i4").astype(np.int32)
    alphabet = np.unique(qcodes)
    qidx = np.searchsorted(alphabet, qcodes)
    sentinel = len(alphabet)
    position = np.minimum(np.searchsorted(alphabet, table.codes), sentinel - 1)
    mapped = np.where(alphabet[position] == table.codes, position, sentinel)
    return list(_batch_damerau(qidx, sentinel, mapped, table.lengths))


def assert_bit_identical(batch, scalar):
    """Same keys, same order, same float bits."""
    assert list(batch.keys()) == list(scalar.keys())
    for key in scalar:
        assert struct.pack("<d", batch[key]) == struct.pack("<d", scalar[key]), (
            key,
            batch[key],
            scalar[key],
        )


# -- batched Damerau-Levenshtein vs the scalar DP ---------------------------------


@given(st.text(alphabet=st.sampled_from("abcde"), min_size=1, max_size=8), st.lists(words, min_size=1, max_size=12))
@settings(max_examples=200, deadline=None)
def test_batch_distance_matches_scalar(query, keys):
    expected = [damerau_levenshtein_distance(query, key) for key in keys]
    assert batch_distances(query, keys) == expected


@given(
    st.text(alphabet=st.sampled_from("abc"), min_size=1, max_size=8),
    st.lists(dense_words, min_size=1, max_size=16),
)
@settings(max_examples=300, deadline=None)
def test_batch_distance_dense_alphabet_transpositions(query, keys):
    """Dense alphabets exercise the vectorized transposition look-back hard."""
    expected = [damerau_levenshtein_distance(query, key) for key in keys]
    assert batch_distances(query, keys) == expected


def test_batch_distance_known_unrestricted_case():
    # d('ca', 'abc') separates unrestricted Damerau-Levenshtein (2) from the
    # restricted/OSA variant (3); the kernel must implement the former.
    assert batch_distances("ca", ["abc"]) == [2]
    assert batch_distances("abc", ["ca"]) == [2]


def test_batch_distance_empty_candidates():
    assert batch_distances("abc", ["", "", "c"]) == [3, 3, 2]


def test_batch_distance_identical_strings():
    keys = ["contact", "title", "a"]
    assert batch_distances("contact", keys) == [0, 6, 6]


def test_batch_distance_prefixes_and_suffixes():
    keys = ["a", "ab", "abc", "abcd", "abcde", "bcde"]
    expected = [damerau_levenshtein_distance("abc", key) for key in keys]
    assert batch_distances("abc", keys) == expected


def test_batch_distance_mixed_length_padding_never_matches():
    # Candidates of wildly different lengths share one padded matrix; the
    # -1 padding must never register as a match against any query character.
    keys = ["x", "xxxxxxxxxx", "", "xx"]
    expected = [damerau_levenshtein_distance("xxx", key) for key in keys]
    assert batch_distances("xxx", keys) == expected


@given(st.lists(unicode_words, min_size=1, max_size=10))
@settings(max_examples=150, deadline=None)
def test_batch_distance_full_unicode(keys):
    query = "αβ名前"
    expected = [damerau_levenshtein_distance(query, key) for key in keys]
    assert batch_distances(query, keys) == expected


def test_batch_distance_golden_vectors():
    # Fixed regression vectors, including the classic textbook pairs.
    cases = [
        ("kitten", "sitting", 3),
        ("sunday", "saturday", 3),
        ("flaw", "lawn", 2),
        ("gumbo", "gambol", 2),
        ("ca", "abc", 2),
        ("a cat", "an act", 2),
        ("abcdef", "abcdef", 0),
        ("abcdef", "fedcba", 5),
        ("aaa", "aaaa", 1),
        ("ab", "ba", 1),
        ("abab", "baba", 2),
    ]
    for query, key, expected in cases:
        assert damerau_levenshtein_distance(query, key) == expected  # pin the reference
        assert batch_distances(query, [key]) == [expected]


@given(st.text(alphabet=st.sampled_from("ab"), min_size=1, max_size=6), dense_words)
@settings(max_examples=200, deadline=None)
def test_batch_distance_agrees_with_bounded_kernel_contract(query, key):
    """min(d, limit + 1) of the batch distance reproduces the early-abandon kernel."""
    (distance,) = batch_distances(query, [key])
    for limit in range(0, max(len(query), len(key)) + 2):
        assert min(distance, limit + 1) == bounded_damerau_levenshtein(query, key, limit)


# -- batch_fuzzy_scores vs the scalar loop ----------------------------------------


@given(
    st.text(alphabet=st.sampled_from("abcde"), min_size=1, max_size=8),
    st.lists(words, min_size=MIN_BATCH_SIZE, max_size=24),
    thresholds,
)
@settings(max_examples=250, deadline=None)
def test_batch_scores_bit_identical_to_scalar(query, keys, threshold):
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores(query, table, ids, threshold)
    assert batch is not None
    assert_bit_identical(batch, scalar_fuzzy_scores(query, keys, ids, threshold))


@given(
    st.text(alphabet=st.sampled_from("abc"), min_size=1, max_size=6),
    st.lists(dense_words, min_size=MIN_BATCH_SIZE, max_size=20),
    thresholds,
)
@settings(max_examples=250, deadline=None)
def test_batch_scores_dense_alphabet_bit_identical(query, keys, threshold):
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores(query, table, ids, threshold)
    assert batch is not None
    assert_bit_identical(batch, scalar_fuzzy_scores(query, keys, ids, threshold))


@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=MIN_BATCH_SIZE, max_size=30),
    thresholds,
)
@settings(max_examples=150, deadline=None)
def test_batch_scores_candidate_subsets_and_repeats(id_list, threshold):
    """Candidate ids may repeat and arrive in any order; dict semantics must match."""
    keys = ["contact", "content", "name", "nam", "", "x", "contac", "tcatnoc", "kontakt", "cntct"]
    table = PackedNameTable.build(keys)
    batch = batch_fuzzy_scores("contact", table, id_list, threshold)
    assert batch is not None
    assert_bit_identical(batch, scalar_fuzzy_scores("contact", keys, id_list, threshold))


def test_batch_scores_insertion_order_is_candidate_order():
    keys = ["zeta", "beta", "betb", "alpha", "bet", "eta", "zet", "abet"]
    table = PackedNameTable.build(keys)
    ids = [5, 1, 0, 3, 4, 2, 7, 6]
    batch = batch_fuzzy_scores("beta", table, ids, 0.0)
    scalar = scalar_fuzzy_scores("beta", keys, ids, 0.0)
    assert list(batch.keys()) == list(scalar.keys())


def test_batch_scores_length_precheck_is_replicated():
    """A candidate with d == gap == budget must be excluded by the precheck.

    For query 'ab' vs key 'abcd' at threshold 0.6: the length gap alone makes
    the best possible score 0.5 < 0.6, so the scalar path returns 0.0 without
    running the DP — even though the true distance (2) fits the edit budget
    (2) and would yield a positive score.  A kernel without the precheck
    would include it.
    """
    assert fuzzy_similarity("ab", "abcd", case_sensitive=True, min_similarity=0.6) == 0.0
    assert damerau_levenshtein_distance("ab", "abcd") == 2
    assert edit_budget(0.6, 4) == 2  # distance fits the budget...
    keys = ["abcd"] + ["qq"] * (MIN_BATCH_SIZE - 1)
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores("ab", table, ids, 0.6)
    assert batch is not None
    assert 0 not in batch  # ...but the precheck must still exclude it
    assert_bit_identical(batch, scalar_fuzzy_scores("ab", keys, ids, 0.6))


def test_batch_scores_edit_budget_boundary():
    """Distances at exactly limit are kept, limit + 1 dropped (given precheck passes)."""
    # threshold 0.5 over 6-char strings: budget = int(0.5 * 6) + 1 = 4.
    query = "aaaaaa"
    keys = [
        "aaaaaa",  # d=0
        "aaaaab",  # d=1
        "aaabbb",  # d=3
        "aabbbb",  # d=4 == limit, score 1 - 4/6 > 0 -> kept
        "abbbbb",  # d=5 == limit + 1 -> dropped
        "bbbbbb",  # d=6 -> dropped
        "aaaaa",   # d=1
        "baaaaa",  # d=1
    ]
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores(query, table, ids, 0.5)
    scalar = scalar_fuzzy_scores(query, keys, ids, 0.5)
    assert batch is not None
    assert 3 in batch and 4 not in batch and 5 not in batch
    assert_bit_identical(batch, scalar)


def test_batch_scores_threshold_zero_keeps_every_positive_score():
    keys = ["name", "mane", "eman", "x", "", "nam", "names", "enam"]
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores("name", table, ids, 0.0)
    scalar = scalar_fuzzy_scores("name", keys, ids, 0.0)
    assert batch is not None
    assert_bit_identical(batch, scalar)
    # the all-different key scores exactly 0 and is excluded by both paths
    assert 3 not in batch


def test_batch_scores_threshold_one_keeps_exact_matches_only():
    keys = ["name", "names", "nam", "name", "eman", "mane", "nameb", "bname"]
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores("name", table, ids, 1.0)
    assert batch is not None
    assert_bit_identical(batch, scalar_fuzzy_scores("name", keys, ids, 1.0))
    assert set(batch) == {0, 3}
    assert batch[0] == 1.0


def test_batch_scores_multi_slab_equals_single_slab(monkeypatch):
    """Forcing one-candidate slabs must not change a single output bit."""
    import repro.kernels.strings as strings_module

    keys = [f"name{i}" for i in range(40)] + ["name", "nam", "x" * 30, ""]
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    whole = batch_fuzzy_scores("name7", table, ids, 0.3)
    monkeypatch.setattr(strings_module, "_SLAB_BUDGET_BYTES", 1)
    sliced = batch_fuzzy_scores("name7", table, ids, 0.3)
    assert whole is not None and sliced is not None
    assert_bit_identical(sliced, whole)
    assert_bit_identical(whole, scalar_fuzzy_scores("name7", keys, ids, 0.3))


def test_batch_scores_case_sensitivity_matches_scalar():
    # The kernel always runs case-sensitively (the matcher lowercases
    # beforehand when configured case-insensitive).
    keys = ["Name", "name", "NAME", "naMe", "nbme", "nime", "namex", "xname"]
    table = PackedNameTable.build(keys)
    ids = list(range(len(keys)))
    batch = batch_fuzzy_scores("name", table, ids, 0.0)
    assert batch is not None
    assert_bit_identical(batch, scalar_fuzzy_scores("name", keys, ids, 0.0))
    assert batch[1] == 1.0 and batch[0] < 1.0


# -- decline paths ----------------------------------------------------------------


def test_kernel_declines_below_min_batch_size():
    keys = ["a"] * MIN_BATCH_SIZE
    table = PackedNameTable.build(keys)
    assert batch_fuzzy_scores("a", table, list(range(MIN_BATCH_SIZE - 1)), 0.5) is None
    assert batch_fuzzy_scores("a", table, list(range(MIN_BATCH_SIZE)), 0.5) is not None


def test_kernel_declines_empty_candidate_list():
    table = PackedNameTable.build(["a", "b"])
    assert batch_fuzzy_scores("a", table, [], 0.5) is None


def test_kernel_declines_without_table():
    assert batch_fuzzy_scores("a", None, list(range(20)), 0.5) is None


def test_kernel_declines_empty_query():
    keys = ["a"] * 12
    table = PackedNameTable.build(keys)
    assert batch_fuzzy_scores("", table, list(range(12)), 0.5) is None


def test_kernel_declines_overlong_query():
    keys = ["a"] * 12
    table = PackedNameTable.build(keys)
    assert batch_fuzzy_scores("q" * (MAX_PACKED_LEN + 1), table, list(range(12)), 0.5) is None


def test_kernel_declines_out_of_range_threshold():
    keys = ["a"] * 12
    table = PackedNameTable.build(keys)
    ids = list(range(12))
    assert batch_fuzzy_scores("a", table, ids, -0.1) is None
    assert batch_fuzzy_scores("a", table, ids, 1.5) is None


def test_kernel_declines_lone_surrogate_query():
    keys = ["a"] * 12
    table = PackedNameTable.build(keys)
    assert batch_fuzzy_scores("\ud800", table, list(range(12)), 0.5) is None


def test_table_build_declines_overlong_key():
    assert PackedNameTable.build(["ok", "x" * (MAX_PACKED_LEN + 1)]) is None


def test_table_build_declines_lone_surrogate_key():
    assert PackedNameTable.build(["ok", "\ud800"]) is None


def test_table_build_accepts_boundary_length_key():
    table = PackedNameTable.build(["x" * MAX_PACKED_LEN, ""])
    assert table is not None
    assert table.width == MAX_PACKED_LEN
    assert list(table.lengths) == [MAX_PACKED_LEN, 0]


def test_table_build_all_empty_keys():
    table = PackedNameTable.build(["", "", ""])
    assert table is not None
    ids = [0, 1, 2] * 3
    batch = batch_fuzzy_scores("ab", table, ids, 0.0)
    assert batch is not None
    assert_bit_identical(batch, scalar_fuzzy_scores("ab", ["", "", ""], ids, 0.0))

"""Property-based admissibility check for the Branch-and-Bound bounding function.

If the bound ever under-estimated the best completion of a partial mapping,
B&B would prune valid mappings and silently lose results; this is the single
most important invariant of the generator, so it gets its own hypothesis test:
for random similarity assignments and random edge counts, the bound evaluated
on any prefix must dominate the score of the full assignment.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.matchers.selection import MappingElement
from repro.objective.bellflower import BellflowerObjective
from repro.schema.builder import TreeBuilder
from repro.schema.repository import RepositoryNodeRef


def _personal_schema(node_count: int):
    builder = TreeBuilder("random-personal")
    root = builder.root("n0")
    for index in range(1, node_count):
        builder.child(root, f"n{index}")
    return builder.build()


def _element(node_id: int, similarity: float) -> MappingElement:
    return MappingElement(
        personal_node_id=node_id,
        ref=RepositoryNodeRef(global_id=100 + node_id, tree_id=0, node_id=node_id),
        similarity=similarity,
    )


@given(
    alpha=st.floats(min_value=0.0, max_value=1.0),
    normalization=st.floats(min_value=0.5, max_value=10.0),
    similarities=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=6),
    prefix_size=st.integers(min_value=0, max_value=5),
    final_edges=st.integers(min_value=1, max_value=30),
    partial_edges_fraction=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=300, deadline=None)
def test_bound_dominates_final_score(
    alpha, normalization, similarities, prefix_size, final_edges, partial_edges_fraction
):
    personal = _personal_schema(len(similarities))
    objective = BellflowerObjective(alpha=alpha, path_normalization=normalization)

    full_assignment = {i: _element(i, s) for i, s in enumerate(similarities)}
    evaluation = objective.evaluate(personal, full_assignment, target_edge_count=final_edges)

    prefix_size = min(prefix_size, len(similarities))
    partial = {i: full_assignment[i] for i in range(prefix_size)}
    # The partial mapping subtree never has more edges than the final one.
    partial_edges = int(final_edges * partial_edges_fraction)
    best_remaining = {
        i: max(similarities[i], 0.0) for i in range(prefix_size, len(similarities))
    }
    bound = objective.bound(personal, partial, best_remaining, partial_edges)
    assert bound + 1e-9 >= evaluation.score


@given(
    similarities=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=6),
    alpha=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_bound_of_complete_assignment_with_final_edges_equals_score(similarities, alpha):
    """With nothing left to assign and the true edge count, the bound collapses to the score."""
    personal = _personal_schema(len(similarities))
    objective = BellflowerObjective(alpha=alpha, path_normalization=4.0)
    assignment = {i: _element(i, s) for i, s in enumerate(similarities)}
    edges = personal.edge_count  # no stretch
    score = objective.evaluate(personal, assignment, target_edge_count=edges).score
    bound = objective.bound(personal, assignment, {}, partial_target_edge_count=edges)
    assert bound == __import__("pytest").approx(score)

"""Tests for Bellflower's objective function (Eqs. 1-3)."""

import pytest

from repro.errors import ObjectiveError
from repro.matchers.selection import MappingElement
from repro.objective.bellflower import BellflowerObjective, NameOnlyObjective, PathOnlyObjective
from repro.schema.repository import RepositoryNodeRef


def element(personal_node_id, global_id, similarity, tree_id=0):
    return MappingElement(
        personal_node_id=personal_node_id,
        ref=RepositoryNodeRef(global_id=global_id, tree_id=tree_id, node_id=global_id),
        similarity=similarity,
    )


@pytest.fixture
def assignment(book_schema):
    """A complete assignment for the book/title/author personal schema."""
    return {
        0: element(0, 10, 0.9),
        1: element(1, 11, 0.8),
        2: element(2, 12, 0.7),
    }


class TestNameSimilarity:
    def test_eq1_is_the_mean_of_element_similarities(self, book_schema, assignment):
        objective = BellflowerObjective(alpha=0.5)
        assert objective.name_similarity(book_schema, assignment) == pytest.approx((0.9 + 0.8 + 0.7) / 3)

    def test_empty_personal_schema_rejected(self, assignment):
        from repro.schema.tree import SchemaTree

        with pytest.raises(ObjectiveError):
            BellflowerObjective().name_similarity(SchemaTree("empty"), assignment)


class TestPathSimilarity:
    def test_eq2_perfect_when_edges_match(self, book_schema):
        objective = BellflowerObjective(path_normalization=4.0)
        # |Es| = 2; a mapping subtree with 2 edges has no stretch penalty.
        assert objective.path_similarity(book_schema, 2) == 1.0

    def test_eq2_decreases_with_stretch(self, book_schema):
        objective = BellflowerObjective(path_normalization=4.0)
        scores = [objective.path_similarity(book_schema, edges) for edges in (2, 3, 4, 6, 10)]
        assert scores == sorted(scores, reverse=True)
        # (|Et| - |Es|) / (|Es| * K) = (4 - 2) / (2 * 4) = 0.25.
        assert objective.path_similarity(book_schema, 4) == pytest.approx(0.75)

    def test_eq2_clamped_to_unit_interval(self, book_schema):
        objective = BellflowerObjective(path_normalization=1.0)
        assert objective.path_similarity(book_schema, 100) == 0.0
        assert objective.path_similarity(book_schema, 1) == 1.0  # overlap-induced >1 is capped

    def test_single_node_personal_schema_has_perfect_path_score(self):
        from repro.schema.builder import TreeBuilder

        single = TreeBuilder.from_nested({"book": []})
        assert BellflowerObjective().path_similarity(single, 0) == 1.0


class TestCombination:
    def test_eq3_weighted_sum(self, book_schema, assignment):
        objective = BellflowerObjective(alpha=0.25, path_normalization=4.0)
        evaluation = objective.evaluate(book_schema, assignment, target_edge_count=4)
        expected = 0.25 * (0.8) + 0.75 * 0.75
        assert evaluation.score == pytest.approx(expected)
        assert evaluation.components["sim"] == pytest.approx(0.8)
        assert evaluation.components["path"] == pytest.approx(0.75)
        assert evaluation.target_edge_count == 4

    def test_alpha_extremes(self, book_schema, assignment):
        name_only = NameOnlyObjective().evaluate(book_schema, assignment, 10)
        assert name_only.score == pytest.approx(0.8)
        path_only = PathOnlyObjective(path_normalization=4.0).evaluate(book_schema, assignment, 2)
        assert path_only.score == 1.0

    def test_incomplete_assignment_rejected(self, book_schema, assignment):
        del assignment[2]
        with pytest.raises(ObjectiveError):
            BellflowerObjective().evaluate(book_schema, assignment, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ObjectiveError):
            BellflowerObjective(alpha=1.5)
        with pytest.raises(ObjectiveError):
            BellflowerObjective(path_normalization=0.0)


class TestBound:
    def test_bound_uses_best_remaining_similarity(self, book_schema):
        objective = BellflowerObjective(alpha=1.0)
        partial = {0: element(0, 10, 0.6)}
        bound = objective.bound(book_schema, partial, {1: 1.0, 2: 0.5}, partial_target_edge_count=0)
        assert bound == pytest.approx((0.6 + 1.0 + 0.5) / 3)

    def test_bound_path_part_monotone_in_partial_edges(self, book_schema):
        objective = BellflowerObjective(alpha=0.0, path_normalization=4.0)
        partial = {0: element(0, 10, 0.6)}
        loose = objective.bound(book_schema, partial, {}, partial_target_edge_count=2)
        tight = objective.bound(book_schema, partial, {}, partial_target_edge_count=8)
        assert tight <= loose

    def test_bound_upper_bounds_any_completion(self, book_schema, assignment):
        objective = BellflowerObjective(alpha=0.5, path_normalization=4.0)
        complete = objective.evaluate(book_schema, assignment, target_edge_count=5)
        partial = {0: assignment[0]}
        bound = objective.bound(
            book_schema,
            partial,
            {1: assignment[1].similarity, 2: assignment[2].similarity},
            partial_target_edge_count=0,
        )
        assert bound >= complete.score

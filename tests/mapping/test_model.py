"""Tests for the schema-mapping model and mapping problems."""

import pytest

from repro.errors import MappingError
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.mapping.model import MappingProblem, SchemaMapping
from repro.objective.bellflower import BellflowerObjective
from repro.schema.repository import RepositoryNodeRef


def test_problem_rejects_invalid_delta(paper_schema, small_candidates, small_oracle):
    with pytest.raises(MappingError):
        MappingProblem(
            personal_schema=paper_schema,
            candidates=small_candidates,
            oracle=small_oracle,
            objective=BellflowerObjective(),
            delta=1.5,
        )


def test_problem_rejects_mismatched_candidates(paper_schema, small_oracle):
    wrong = MappingElementSets([0, 1])  # paper schema has 3 nodes
    with pytest.raises(MappingError):
        MappingProblem(
            personal_schema=paper_schema,
            candidates=wrong,
            oracle=small_oracle,
            objective=BellflowerObjective(),
            delta=0.5,
        )


def test_assignment_order_starts_at_root_and_respects_depth(small_problem):
    order = small_problem.assignment_order()
    schema = small_problem.personal_schema
    assert order[0] == schema.root_id
    depths = [schema.depth(node_id) for node_id in order]
    assert depths == sorted(depths)
    assert sorted(order) == list(schema.node_ids())


def test_personal_edges_are_parent_child_pairs(small_problem):
    edges = small_problem.personal_edges()
    schema = small_problem.personal_schema
    assert len(edges) == schema.edge_count
    for parent, child in edges:
        assert schema.parent_id(child) == parent


def test_path_edges_across_trees_raises(small_problem, small_repository):
    first = small_repository.ref(0, 1)
    second = small_repository.ref(1, 1)
    with pytest.raises(MappingError):
        small_problem.path_edges(first, second)


def test_target_edge_count_of_fig1_mapping(book_problem, small_repository):
    """The Fig. 1 mapping book->book, title->title, author->authorName has |Et| = 3."""
    tree = small_repository.tree(0)
    book_ref = small_repository.ref(0, tree.find_by_name("book")[0])
    title_ref = small_repository.ref(0, tree.find_by_name("title")[0])
    author_ref = small_repository.ref(0, tree.find_by_name("authorName")[0])
    assignment = {
        0: MappingElement(0, book_ref, 1.0),
        1: MappingElement(1, title_ref, 1.0),
        2: MappingElement(2, author_ref, 0.7),
    }
    assert book_problem.target_edge_count(assignment) == 3
    # Partial assignment: only edges with both endpoints assigned count.
    partial = {0: assignment[0], 1: assignment[1]}
    assert book_problem.target_edge_count(partial) == 1


def test_evaluate_produces_schema_mapping(book_problem, small_repository):
    tree = small_repository.tree(0)
    assignment = {
        0: MappingElement(0, small_repository.ref(0, tree.find_by_name("book")[0]), 1.0),
        1: MappingElement(1, small_repository.ref(0, tree.find_by_name("title")[0]), 1.0),
        2: MappingElement(2, small_repository.ref(0, tree.find_by_name("authorName")[0]), 0.73),
    }
    mapping = book_problem.evaluate(assignment)
    assert isinstance(mapping, SchemaMapping)
    assert mapping.tree_id == 0
    assert mapping.target_edge_count == 3
    assert mapping.components["sim"] == pytest.approx((1.0 + 1.0 + 0.73) / 3)
    assert 0.0 <= mapping.score <= 1.0
    assert len(mapping.signature()) == 3
    assert "book" in mapping.describe(book_problem.personal_schema, small_repository)


def test_evaluate_rejects_cross_tree_assignment(book_problem, small_repository):
    assignment = {
        0: MappingElement(0, small_repository.ref(0, 1), 1.0),
        1: MappingElement(1, small_repository.ref(0, 5), 1.0),
        2: MappingElement(2, small_repository.ref(1, 2), 0.7),
    }
    with pytest.raises(MappingError):
        book_problem.evaluate(assignment)


def test_evaluate_rejects_incomplete_assignment(book_problem, small_repository):
    assignment = {0: MappingElement(0, small_repository.ref(0, 1), 1.0)}
    with pytest.raises(MappingError):
        book_problem.evaluate(assignment)


def test_best_similarity_per_node(small_problem):
    best = small_problem.best_similarity_per_node()
    assert set(best) == set(small_problem.personal_schema.node_ids())
    for node_id, elements in small_problem.candidates:
        expected = max((e.similarity for e in elements), default=0.0)
        assert best[node_id] == expected

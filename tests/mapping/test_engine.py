"""Tests for the unified search core: top-k semantics, the shared incumbent
pool, and the equivalence of the engine-based generators with the exhaustive
ground truth (the legacy searchers were themselves pinned against it, so
agreeing with the exhaustive enumeration pins the engine against the legacy
outputs transitively)."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.mapping.astar import AStarGenerator
from repro.mapping.beam import BeamSearchGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.engine import TopKPool
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.mapping.ranking import ranking_sort_key

COMPLETE_GENERATORS = [
    BranchAndBoundGenerator(),
    AStarGenerator(),
    BeamSearchGenerator(beam_width=10_000),
]
GENERATOR_IDS = ["bnb", "astar", "beam-wide"]


def ranked(result):
    return [(mapping.score, mapping.signature()) for mapping in result.mappings]


class TestTopKPool:
    def test_floor_is_minus_infinity_below_k(self):
        pool = TopKPool(3)
        pool.offer(0.9)
        pool.offer(0.8)
        assert pool.floor() == float("-inf")
        pool.offer(0.7)
        assert pool.floor() == 0.7

    def test_floor_is_kth_best_and_monotonic(self):
        pool = TopKPool(2)
        for score, expected in [(0.5, float("-inf")), (0.4, 0.4), (0.9, 0.5), (0.95, 0.9), (0.1, 0.9)]:
            pool.offer(score)
            assert pool.floor() == expected

    def test_k_must_be_positive(self):
        with pytest.raises(Exception):
            TopKPool(0)

    def test_concurrent_offers_keep_the_true_kth_best(self):
        pool = TopKPool(5)
        scores = [i / 1000.0 for i in range(1000)]

        def offer_slice(start):
            for score in scores[start::4]:
                pool.offer(score)

        threads = [threading.Thread(target=offer_slice, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert pool.floor() == scores[-5]

    def test_pickle_round_trip_snapshots_scores(self):
        pool = TopKPool(2)
        pool.offer(0.8)
        pool.offer(0.6)
        copy = pickle.loads(pickle.dumps(pool))
        assert copy.floor() == pool.floor() == 0.6
        # The copy is independent (per-worker semantics under process pools).
        copy.offer(0.9)
        assert copy.floor() == 0.8
        assert pool.floor() == 0.6

    def test_duplicate_signatures_count_once(self):
        """The same mapping found in overlapping clusters must not inflate the floor."""
        pool = TopKPool(2)
        pool.offer(0.9, signature=(1, 2))
        pool.offer(0.9, signature=(1, 2))  # duplicate discovery in another cluster
        assert pool.floor() == float("-inf")  # still only ONE distinct mapping
        pool.offer(0.85, signature=(3, 4))
        assert pool.floor() == 0.85  # rank 2 is the distinct 0.85, not the 0.9 copy

    def test_evicted_signature_cannot_reenter(self):
        pool = TopKPool(1)
        pool.offer(0.5, signature=(1,))
        pool.offer(0.9, signature=(2,))  # evicts (1,)
        pool.offer(0.5, signature=(1,))  # re-offer of the evicted entry
        assert pool.floor() == 0.9


class TestTopKSearch:
    @pytest.mark.parametrize("generator", COMPLETE_GENERATORS, ids=GENERATOR_IDS)
    def test_top_1_is_bit_identical_to_complete_search(self, small_problem, generator):
        complete = generator.generate(small_problem)
        small_problem.top_k = 1
        top1 = generator.generate(small_problem)
        small_problem.top_k = None
        assert len(top1.mappings) == 1
        assert ranked(top1) == ranked(complete)[:1]

    @pytest.mark.parametrize("generator", COMPLETE_GENERATORS, ids=GENERATOR_IDS)
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 100])
    def test_top_k_is_prefix_of_complete_ranking(self, small_problem, generator, k):
        complete = generator.generate(small_problem)
        small_problem.top_k = k
        top = generator.generate(small_problem)
        small_problem.top_k = None
        assert ranked(top) == ranked(complete)[:k]

    def test_top_k_prunes_partial_mappings(self, small_problem):
        generator = BranchAndBoundGenerator()
        complete = generator.generate(small_problem)
        small_problem.top_k = 1
        top1 = generator.generate(small_problem)
        small_problem.top_k = None
        assert top1.partial_mappings <= complete.partial_mappings

    def test_exhaustive_honours_top_k_result_semantics(self, small_problem):
        complete = ExhaustiveGenerator().generate(small_problem)
        small_problem.top_k = 2
        top = ExhaustiveGenerator().generate(small_problem)
        small_problem.top_k = None
        assert ranked(top) == ranked(complete)[:2]
        # ... but, as ground truth, it never prunes.
        assert top.partial_mappings == complete.partial_mappings

    @pytest.mark.parametrize("generator", COMPLETE_GENERATORS, ids=GENERATOR_IDS)
    def test_shared_pool_raises_the_floor_without_losing_the_top(self, small_problem, generator):
        complete = generator.generate(small_problem)
        best_score = complete.mappings[0].score

        pool = TopKPool(1)
        pool.offer(best_score)  # an incumbent from "another cluster", tied with the best
        small_problem.top_k = 1
        small_problem.shared_pool = pool
        shared = generator.generate(small_problem)
        small_problem.top_k = None
        small_problem.shared_pool = None

        # Ties with the incumbent floor are never pruned: the best mapping
        # must still be found, bit-identically.
        assert ranked(shared) == ranked(complete)[:1]
        # The pre-seeded floor prunes at least as hard as a cold search.
        cold_counters = _cold_top1_counters(small_problem, generator)
        assert shared.partial_mappings <= cold_counters["partial_mappings"]

    def test_preseeded_floor_triggers_incumbent_pruning(self, small_problem):
        generator = BranchAndBoundGenerator()
        complete = generator.generate(small_problem)
        pool = TopKPool(1)
        pool.offer(complete.mappings[0].score)
        small_problem.top_k = 1
        small_problem.shared_pool = pool
        shared = generator.generate(small_problem)
        small_problem.top_k = None
        small_problem.shared_pool = None
        assert shared.counters["incumbent_pruned_partial_mappings"] > 0

    def test_incomplete_policies_opt_out_of_incumbent_pruning(self, small_problem):
        """Beam and budget-limited A* results must not depend on floor timing."""
        complete = BranchAndBoundGenerator().generate(small_problem)
        pool = TopKPool(1)
        pool.offer(complete.mappings[0].score, signature=("other-cluster",))
        for generator in (BeamSearchGenerator(beam_width=3), AStarGenerator(max_expansions=1000)):
            small_problem.top_k = 1
            small_problem.shared_pool = pool
            with_pool = generator.generate(small_problem)
            small_problem.shared_pool = None
            without_pool = generator.generate(small_problem)
            small_problem.top_k = None
            # The shared pool is ignored entirely: identical results and
            # counters, no incumbent pruning.
            assert ranked(with_pool) == ranked(without_pool)
            assert with_pool.counters.as_dict() == without_pool.counters.as_dict()
            assert with_pool.counters["incumbent_pruned_partial_mappings"] == 0

    def test_invalid_top_k_rejected(self, small_problem):
        from repro.errors import MappingError
        from repro.mapping.model import MappingProblem

        with pytest.raises(MappingError):
            MappingProblem(
                personal_schema=small_problem.personal_schema,
                candidates=small_problem.candidates,
                oracle=small_problem.oracle,
                objective=small_problem.objective,
                delta=small_problem.delta,
                top_k=0,
            )


def _cold_top1_counters(problem, generator):
    problem.top_k = 1
    result = generator.generate(problem)
    problem.top_k = None
    return result.counters.as_dict()


class TestCanonicalRankingKey:
    def test_generated_rankings_are_sorted_by_the_canonical_key(self, small_problem):
        result = ExhaustiveGenerator().generate(small_problem)
        keys = [ranking_sort_key(mapping) for mapping in result.mappings]
        assert keys == sorted(keys)

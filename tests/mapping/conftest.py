"""Fixtures shared by the mapping-generator tests."""

from __future__ import annotations

import pytest

from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector
from repro.mapping.model import MappingProblem
from repro.objective.bellflower import BellflowerObjective


@pytest.fixture
def small_problem(paper_schema, small_repository, small_oracle):
    """A mapping problem over the whole small repository (threshold low enough to be interesting)."""
    selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.35)
    candidates = selector.select(paper_schema, small_repository)
    return MappingProblem(
        personal_schema=paper_schema,
        candidates=candidates,
        oracle=small_oracle,
        objective=BellflowerObjective(alpha=0.5, path_normalization=4.0),
        delta=0.5,
    )


@pytest.fixture
def book_problem(book_schema, small_repository, small_oracle):
    """The Fig. 1 matching problem: book(title, author) against the small repository."""
    selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.3)
    candidates = selector.select(book_schema, small_repository)
    return MappingProblem(
        personal_schema=book_schema,
        candidates=candidates,
        oracle=small_oracle,
        objective=BellflowerObjective(alpha=0.5, path_normalization=4.0),
        delta=0.4,
    )

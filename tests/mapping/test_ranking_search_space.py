"""Tests for mapping ranking/merging and search-space accounting."""

import pytest

from repro.matchers.selection import MappingElement, MappingElementSets
from repro.mapping.model import SchemaMapping
from repro.mapping.ranking import (
    above_threshold,
    merge_ranked,
    ranking_sort_key,
    score_histogram,
    top_n,
)
from repro.mapping.search_space import (
    candidate_search_space,
    clustered_search_space,
    grouped_search_space,
    reduction_percentage,
    search_space_size,
    theoretical_reduction_factor,
)
from repro.schema.repository import RepositoryNodeRef


def make_mapping(score, global_ids, cluster_id=None):
    assignment = {
        index: MappingElement(
            index,
            RepositoryNodeRef(global_id=gid, tree_id=0, node_id=gid),
            score,
        )
        for index, gid in enumerate(global_ids)
    }
    return SchemaMapping(
        assignment=assignment,
        score=score,
        components={"sim": score, "path": 1.0},
        target_edge_count=len(global_ids) - 1,
        tree_id=0,
        cluster_id=cluster_id,
    )


class TestRanking:
    def test_merge_ranked_orders_by_score(self):
        merged = merge_ranked([[make_mapping(0.7, (1, 2))], [make_mapping(0.9, (3, 4))]])
        assert [m.score for m in merged] == [0.9, 0.7]

    def test_merge_ranked_deduplicates_identical_signatures(self):
        duplicate_a = make_mapping(0.8, (1, 2), cluster_id=0)
        duplicate_b = make_mapping(0.8, (1, 2), cluster_id=1)
        merged = merge_ranked([[duplicate_a], [duplicate_b]])
        assert len(merged) == 1
        not_deduplicated = merge_ranked([[duplicate_a], [duplicate_b]], deduplicate=False)
        assert len(not_deduplicated) == 2

    def test_equal_scores_rank_identically_regardless_of_arrival_order(self):
        """The canonical key makes merged rankings independent of group order."""
        a = make_mapping(0.8, (1, 2), cluster_id=2)
        b = make_mapping(0.8, (3, 4), cluster_id=0)
        c = make_mapping(0.8, (5, 6), cluster_id=1)
        forward = merge_ranked([[a], [b], [c]])
        backward = merge_ranked([[c], [b], [a]])
        assert [m.signature() for m in forward] == [m.signature() for m in backward]
        # Ties break on cluster id first: 0, 1, 2.
        assert [m.cluster_id for m in forward] == [0, 1, 2]

    def test_duplicate_survivor_is_deterministic(self):
        """Dedup keeps the lowest-cluster instance of an equal-score duplicate."""
        from_cluster_3 = make_mapping(0.8, (1, 2), cluster_id=3)
        from_cluster_1 = make_mapping(0.8, (1, 2), cluster_id=1)
        merged = merge_ranked([[from_cluster_3], [from_cluster_1]])
        assert len(merged) == 1
        assert merged[0].cluster_id == 1

    def test_ranking_sort_key_places_clusterless_after_clustered(self):
        clustered = make_mapping(0.8, (1, 2), cluster_id=7)
        clusterless = make_mapping(0.8, (1, 2), cluster_id=None)
        assert ranking_sort_key(clustered) < ranking_sort_key(clusterless)

    def test_top_n(self):
        mappings = [make_mapping(s, (int(s * 100), int(s * 100) + 1)) for s in (0.5, 0.9, 0.7)]
        best_two = top_n(mappings, 2)
        assert [m.score for m in best_two] == [0.9, 0.7]
        assert top_n(mappings, 0) == []
        with pytest.raises(ValueError):
            top_n(mappings, -1)

    def test_above_threshold(self):
        mappings = [make_mapping(s, (int(s * 100), int(s * 100) + 1)) for s in (0.5, 0.9)]
        assert len(above_threshold(mappings, 0.8)) == 1

    def test_score_histogram(self):
        mappings = [make_mapping(s, (int(s * 1000), int(s * 1000) + 1)) for s in (0.76, 0.79, 0.91)]
        histogram = score_histogram(mappings, bin_width=0.05)
        assert sum(histogram.values()) == 3
        with pytest.raises(ValueError):
            score_histogram(mappings, bin_width=0.0)


class TestSearchSpace:
    def test_product_of_candidate_counts(self):
        assert search_space_size({0: 3, 1: 4, 2: 5}) == 60
        assert search_space_size([2, 2]) == 4

    def test_zero_candidates_empty_space(self):
        assert search_space_size({0: 3, 1: 0}) == 0
        assert search_space_size([]) == 0

    def test_candidate_search_space(self):
        sets = MappingElementSets([0, 1])
        for gid in range(3):
            sets.add(MappingElement(0, RepositoryNodeRef(gid, 0, gid), 0.5))
        sets.add(MappingElement(1, RepositoryNodeRef(10, 0, 10), 0.5))
        assert candidate_search_space(sets) == 3

    def test_clustered_search_space_sums_clusters(self):
        def make_sets(counts):
            sets = MappingElementSets(list(range(len(counts))))
            gid = 0
            for node_id, count in enumerate(counts):
                for _ in range(count):
                    sets.add(MappingElement(node_id, RepositoryNodeRef(gid, 0, gid), 0.5))
                    gid += 1
            return sets

        clusters = [make_sets([2, 2]), make_sets([3, 1])]
        assert clustered_search_space(clusters) == 4 + 3

    def test_grouped_search_space(self):
        groups = {0: ["a", "b", "c"], 1: ["d", "e"]}
        assert grouped_search_space(groups) == 6
        assert grouped_search_space({0: []}) == 0

    def test_theoretical_reduction_factor(self):
        # c^(|Ns|-1): with 10 clusters and 3 personal nodes the space shrinks ~100x.
        assert theoretical_reduction_factor(10, 3) == 100.0
        assert theoretical_reduction_factor(1, 5) == 1.0
        with pytest.raises(ValueError):
            theoretical_reduction_factor(0, 3)
        with pytest.raises(ValueError):
            theoretical_reduction_factor(3, 0)

    def test_reduction_percentage(self):
        assert reduction_percentage(150, 300) == pytest.approx(0.5)
        assert reduction_percentage(10, 0) == 0.0

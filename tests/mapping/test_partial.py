"""Tests for the partial-mapping extension (the paper's future-work item)."""

import pytest

from repro.errors import MappingError
from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.model import MappingProblem
from repro.mapping.partial import PartialMappingGenerator, partial_mappings_for_cluster
from repro.objective.bellflower import BellflowerObjective


@pytest.fixture
def incomplete_problem(paper_schema, small_repository, small_oracle):
    """Candidates restricted to the library tree, which has no 'email'-like element.

    The library tree (tree 0) offers candidates for "name"/"address" style nodes
    but nothing for "email", so no complete mapping exists there — exactly the
    non-useful-cluster situation the partial-mapping extension targets.
    """
    candidates = MappingElementSets(list(paper_schema.node_ids()))
    tree = small_repository.tree(0)
    address_id = tree.find_by_name("address")[0]
    author_id = tree.find_by_name("authorName")[0]
    # personal node 0 = name, 1 = address, 2 = email.
    candidates.add(MappingElement(0, small_repository.ref(0, author_id), 0.55))
    candidates.add(MappingElement(1, small_repository.ref(0, address_id), 1.0))
    return MappingProblem(
        personal_schema=paper_schema,
        candidates=candidates,
        oracle=small_oracle,
        objective=BellflowerObjective(alpha=0.5, path_normalization=4.0),
        delta=0.5,
    )


class TestPartialMappingGenerator:
    def test_non_useful_cluster_yields_partial_mappings(self, incomplete_problem):
        # The complete-mapping generator finds nothing here ...
        assert BranchAndBoundGenerator().generate(incomplete_problem).mapping_count == 0
        # ... but the partial generator recovers the name/address fragment.
        partials, result = PartialMappingGenerator(min_coverage=0.5).generate(incomplete_problem)
        assert partials
        best = partials[0]
        assert set(best.covered_nodes()) == {0, 1}
        assert best.coverage == pytest.approx(2 / 3)
        assert result.counters["partial_mappings"] > 0

    def test_scores_penalize_missing_nodes(self, incomplete_problem, small_repository):
        partials, _ = PartialMappingGenerator(min_coverage=0.3).generate(incomplete_problem)
        best = partials[0]
        # With a third of the name similarity missing, the score cannot reach
        # what a complete mapping with the same element quality would get.
        assert best.score < 0.9
        assert best.score > 0.0
        # Every partial mapping pays for the nodes it leaves uncovered: its
        # Δsim contribution is bounded by covered-similarity / |Ns|.
        objective = incomplete_problem.objective
        for partial in partials:
            covered_sim = sum(e.similarity for e in partial.assignment.values())
            sim_part = covered_sim / incomplete_problem.personal_schema.node_count
            assert partial.score <= objective.alpha * sim_part + (1.0 - objective.alpha) + 1e-9

    def test_min_coverage_filters_small_fragments(self, incomplete_problem):
        loose, _ = PartialMappingGenerator(min_coverage=0.3).generate(incomplete_problem)
        strict, _ = PartialMappingGenerator(min_coverage=0.7).generate(incomplete_problem)
        assert all(len(p.assignment) >= 1 for p in loose)
        assert all(p.coverage >= 0.65 for p in strict)
        assert len(strict) <= len(loose)

    def test_delta_threshold_filters_low_scores(self, incomplete_problem):
        everything, _ = PartialMappingGenerator(min_coverage=0.3, delta=0.0).generate(incomplete_problem)
        filtered, _ = PartialMappingGenerator(min_coverage=0.3, delta=0.7).generate(incomplete_problem)
        assert {p.signature() for p in filtered} <= {p.signature() for p in everything}
        assert all(p.score >= 0.7 for p in filtered)

    def test_results_sorted_by_score_then_coverage(self, incomplete_problem):
        partials, _ = PartialMappingGenerator(min_coverage=0.3).generate(incomplete_problem)
        scores = [p.score for p in partials]
        assert scores == sorted(scores, reverse=True)

    def test_complete_candidates_also_produce_full_coverage_partials(self, small_problem):
        partials = partial_mappings_for_cluster(small_problem, min_coverage=1.0)
        assert partials
        assert all(p.coverage == 1.0 for p in partials)
        # Full-coverage partial mappings coincide with complete mappings' scores.
        complete = BranchAndBoundGenerator().generate(small_problem)
        best_complete = complete.mappings[0]
        assert partials[0].score == pytest.approx(best_complete.score)

    def test_invalid_parameters(self):
        with pytest.raises(MappingError):
            PartialMappingGenerator(min_coverage=0.0)
        with pytest.raises(MappingError):
            PartialMappingGenerator(min_coverage=1.5)

    def test_requires_bellflower_objective(self, incomplete_problem):
        class OtherObjective(BellflowerObjective):
            pass

        incomplete_problem.objective = object()  # not a BellflowerObjective
        with pytest.raises(MappingError):
            PartialMappingGenerator().generate(incomplete_problem)

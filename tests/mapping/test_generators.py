"""Tests for the mapping generators (exhaustive, B&B, beam, A*).

The central correctness property: Branch-and-Bound and A* must find *exactly*
the mappings the exhaustive generator finds (same signatures, same scores),
while generating no more partial mappings.  Beam search may lose mappings but
must never invent ones the exhaustive search does not have.
"""

import pytest

from repro.mapping.astar import AStarGenerator
from repro.mapping.beam import BeamSearchGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.mapping.support import candidates_by_tree


def signatures(result):
    return {mapping.signature() for mapping in result.mappings}


def scores_by_signature(result):
    return {mapping.signature(): mapping.score for mapping in result.mappings}


class TestExhaustive:
    def test_finds_perfect_mapping_for_paper_schema(self, small_problem, small_repository):
        result = ExhaustiveGenerator().generate(small_problem)
        assert result.mapping_count >= 1
        best = result.mappings[0]
        names = [small_repository.node(element.ref).name.lower() for _, element in sorted(best.assignment.items())]
        # The contact tree contains exact name/address/email children of "person";
        # Δsim = 1.0 and the three sibling edges give |Et| = 3 so Δpath = 0.875.
        assert names == ["name", "address", "email"]
        assert best.components["sim"] == pytest.approx(1.0)
        assert best.score == pytest.approx(0.9375)

    def test_results_sorted_by_score(self, small_problem):
        result = ExhaustiveGenerator().generate(small_problem)
        scores = [mapping.score for mapping in result.mappings]
        assert scores == sorted(scores, reverse=True)

    def test_all_results_clear_delta_and_stay_in_one_tree(self, small_problem):
        result = ExhaustiveGenerator().generate(small_problem)
        for mapping in result.mappings:
            assert mapping.score >= small_problem.delta
            tree_ids = {element.ref.tree_id for element in mapping.assignment.values()}
            assert len(tree_ids) == 1

    def test_injective_assignments(self, small_problem):
        result = ExhaustiveGenerator().generate(small_problem)
        for mapping in result.mappings:
            globals_used = [element.ref.global_id for element in mapping.assignment.values()]
            assert len(globals_used) == len(set(globals_used))


class TestBranchAndBound:
    def test_equivalent_to_exhaustive(self, small_problem):
        exhaustive = ExhaustiveGenerator().generate(small_problem)
        bnb = BranchAndBoundGenerator().generate(small_problem)
        assert signatures(bnb) == signatures(exhaustive)
        exhaustive_scores = scores_by_signature(exhaustive)
        for signature, score in scores_by_signature(bnb).items():
            assert score == pytest.approx(exhaustive_scores[signature])

    def test_equivalent_to_exhaustive_on_book_problem(self, book_problem):
        exhaustive = ExhaustiveGenerator().generate(book_problem)
        bnb = BranchAndBoundGenerator().generate(book_problem)
        assert signatures(bnb) == signatures(exhaustive)

    def test_prunes_partial_mappings(self, small_problem):
        exhaustive = ExhaustiveGenerator().generate(small_problem)
        bnb = BranchAndBoundGenerator().generate(small_problem)
        assert bnb.partial_mappings <= exhaustive.partial_mappings
        assert bnb.counters["pruned_partial_mappings"] >= 0

    def test_higher_delta_prunes_more(self, small_problem):
        low = BranchAndBoundGenerator().generate(small_problem)
        small_problem.delta = 0.95
        high = BranchAndBoundGenerator().generate(small_problem)
        assert high.partial_mappings <= low.partial_mappings
        assert signatures(high) <= signatures(low)
        small_problem.delta = 0.5

    def test_without_bounding_matches_exhaustive_partial_counts(self, book_problem):
        exhaustive = ExhaustiveGenerator().generate(book_problem)
        unbounded = BranchAndBoundGenerator(use_bounding=False).generate(book_problem)
        assert unbounded.partial_mappings == exhaustive.partial_mappings
        assert signatures(unbounded) == signatures(exhaustive)


class TestAStar:
    def test_equivalent_to_exhaustive(self, small_problem):
        exhaustive = ExhaustiveGenerator().generate(small_problem)
        astar = AStarGenerator().generate(small_problem)
        assert signatures(astar) == signatures(exhaustive)

    def test_expansion_limit_flag(self, small_problem):
        limited = AStarGenerator(max_expansions=1).generate(small_problem)
        assert limited.counters["expansion_limit_reached"] == 1

    def test_invalid_expansion_limit(self):
        with pytest.raises(ValueError):
            AStarGenerator(max_expansions=0)


class TestBeamSearch:
    def test_wide_beam_matches_exhaustive(self, small_problem):
        exhaustive = ExhaustiveGenerator().generate(small_problem)
        beam = BeamSearchGenerator(beam_width=10_000).generate(small_problem)
        assert signatures(beam) == signatures(exhaustive)

    def test_narrow_beam_is_a_subset(self, small_problem):
        exhaustive = ExhaustiveGenerator().generate(small_problem)
        narrow = BeamSearchGenerator(beam_width=2).generate(small_problem)
        assert signatures(narrow) <= signatures(exhaustive)
        assert narrow.mapping_count <= exhaustive.mapping_count

    def test_narrow_beam_keeps_the_best_mapping(self, small_problem):
        exhaustive = ExhaustiveGenerator().generate(small_problem)
        narrow = BeamSearchGenerator(beam_width=3).generate(small_problem)
        assert narrow.mappings[0].score == pytest.approx(exhaustive.mappings[0].score)

    def test_invalid_beam_width(self):
        with pytest.raises(Exception):
            BeamSearchGenerator(beam_width=0)


class TestSupport:
    def test_candidates_by_tree_only_returns_complete_trees(self, small_problem):
        groups = candidates_by_tree(small_problem)
        personal_ids = set(small_problem.personal_schema.node_ids())
        for tree_id, per_node in groups.items():
            assert set(per_node) == personal_ids
            for elements in per_node.values():
                assert all(element.ref.tree_id == tree_id for element in elements)
                similarities = [element.similarity for element in elements]
                assert similarities == sorted(similarities, reverse=True)

    def test_generation_result_merge(self, small_problem):
        first = BranchAndBoundGenerator().generate(small_problem)
        second = BranchAndBoundGenerator().generate(small_problem)
        total_before = first.mapping_count
        partials_before = first.partial_mappings
        first.merge(second)
        assert first.mapping_count == 2 * total_before
        assert first.partial_mappings == 2 * partials_before

"""Property-based equivalence of Branch-and-Bound / A* with exhaustive search.

Random small matching problems are generated (random repository tree, random
similarity scores, random threshold); on every instance the pruning generators
must return exactly the mappings the exhaustive generator returns.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.labeling.distance import RepositoryDistanceOracle
from repro.matchers.selection import MappingElement, MappingElementSets
from repro.mapping.astar import AStarGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.mapping.model import MappingProblem
from repro.objective.bellflower import BellflowerObjective
from repro.schema.builder import TreeBuilder
from repro.schema.node import SchemaNode
from repro.schema.repository import SchemaRepository
from repro.schema.tree import SchemaTree


def _personal_schema():
    builder = TreeBuilder("personal")
    root = builder.root("a")
    builder.child(root, "b")
    builder.child(root, "c")
    return builder.build()


@st.composite
def random_problems(draw):
    # Random repository tree with 4-14 nodes.
    size = draw(st.integers(min_value=4, max_value=14))
    tree = SchemaTree(name="random-repo")
    tree.add_root(SchemaNode(name="r0"))
    for index in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=index - 1))
        tree.add_child(parent, SchemaNode(name=f"r{index}"))
    repository = SchemaRepository("random")
    repository.add_tree(tree)

    personal = _personal_schema()
    candidates = MappingElementSets(list(personal.node_ids()))
    # Each personal node gets 1-4 random candidates with random similarities.
    for node_id in personal.node_ids():
        count = draw(st.integers(min_value=1, max_value=4))
        chosen = draw(
            st.lists(
                st.integers(min_value=0, max_value=size - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        for repo_node in chosen:
            similarity = draw(st.floats(min_value=0.1, max_value=1.0))
            candidates.add(
                MappingElement(node_id, repository.ref(0, repo_node), round(similarity, 3))
            )

    delta = draw(st.sampled_from([0.3, 0.5, 0.7, 0.85]))
    alpha = draw(st.sampled_from([0.25, 0.5, 0.75]))
    return MappingProblem(
        personal_schema=personal,
        candidates=candidates,
        oracle=RepositoryDistanceOracle(repository),
        objective=BellflowerObjective(alpha=alpha, path_normalization=4.0),
        delta=delta,
    )


def _signatures(result):
    return {mapping.signature() for mapping in result.mappings}


@given(random_problems())
@settings(max_examples=60, deadline=None)
def test_branch_and_bound_finds_exactly_the_exhaustive_mappings(problem):
    exhaustive = ExhaustiveGenerator().generate(problem)
    bnb = BranchAndBoundGenerator().generate(problem)
    assert _signatures(bnb) == _signatures(exhaustive)
    assert bnb.partial_mappings <= exhaustive.partial_mappings


@given(random_problems())
@settings(max_examples=40, deadline=None)
def test_astar_finds_exactly_the_exhaustive_mappings(problem):
    exhaustive = ExhaustiveGenerator().generate(problem)
    astar = AStarGenerator().generate(problem)
    assert _signatures(astar) == _signatures(exhaustive)


@given(random_problems())
@settings(max_examples=40, deadline=None)
def test_every_reported_mapping_clears_delta_and_is_injective(problem):
    for mapping in BranchAndBoundGenerator().generate(problem).mappings:
        assert mapping.score >= problem.delta
        used = [element.ref.global_id for element in mapping.assignment.values()]
        assert len(used) == len(set(used))


@given(random_problems(), st.sampled_from([1, 2, 4]))
@settings(max_examples=60, deadline=None)
def test_top_k_search_is_a_prefix_of_the_complete_ranking(problem, k):
    """Incumbent pruning must be invisible in the top-k results themselves."""
    for generator in (BranchAndBoundGenerator(), AStarGenerator()):
        complete = generator.generate(problem)
        problem.top_k = k
        top = generator.generate(problem)
        problem.top_k = None
        ranked = [(mapping.score, mapping.signature()) for mapping in top.mappings]
        reference = [(mapping.score, mapping.signature()) for mapping in complete.mappings]
        assert ranked == reference[:k]
        assert top.partial_mappings <= complete.partial_mappings

"""Equivalence and index tests for the batch element-matching engine.

The batch path (name index + lossless prefilter + pruned kernel) must produce
``MappingElementSets`` that are *identical* — same pairs, same similarity
floats, same ordering — to the naive per-pair scan, across thresholds,
``top_k`` values, and repositories with heavily duplicated names.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import MatcherError
from repro.matchers.base import BatchElementMatcher
from repro.matchers.index import LRUMemo, RepositoryNameIndex
from repro.matchers.name import FuzzyNameMatcher, NGramNameMatcher, TokenNameMatcher
from repro.matchers.selection import MappingElementSelector
from repro.matchers.string_metrics import fuzzy_similarity
from repro.matchers.structure import StructuralContextMatcher
from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository
from repro.utils.counters import CounterSet
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import paper_personal_schema, purchase_personal_schema

NAME_POOL = [
    "name", "Name", "fullName", "full_name", "author", "authorName", "autor",
    "address", "shippingAddress", "addr", "email", "eMail", "mail", "title",
    "titel", "price", "prices", "quantity", "qty", "date", "person", "persons",
    "x", "ab", "aVeryLongElementNameIndeed", "contact",
]


def snapshot(sets):
    return {
        node_id: [(e.ref.global_id, e.similarity) for e in sets.elements_for(node_id)]
        for node_id in sets.personal_node_ids
    }


def random_repository(seed: int, trees: int = 8, nodes_per_tree: int = 9) -> SchemaRepository:
    """A small forest whose names repeat heavily across and within trees."""
    rng = random.Random(seed)
    repository = SchemaRepository(name=f"dup-repo-{seed}")
    for tree_index in range(trees):
        builder = TreeBuilder(f"tree-{tree_index}")
        root = builder.root(rng.choice(NAME_POOL) or "root")
        parents = [root]
        for _ in range(nodes_per_tree - 1):
            parent = rng.choice(parents)
            child = builder.child(parent, rng.choice(NAME_POOL))
            parents.append(child)
        repository.add_tree(builder.build())
    return repository


@pytest.fixture(scope="module")
def duplicate_repository() -> SchemaRepository:
    return random_repository(seed=1)


class TestBatchNaiveEquivalence:
    @pytest.mark.parametrize("matcher_cls", [FuzzyNameMatcher, TokenNameMatcher, NGramNameMatcher])
    @pytest.mark.parametrize("threshold", [0.0, 0.4, 0.6, 0.85, 1.0])
    @pytest.mark.parametrize("top_k", [None, 1, 3])
    def test_batch_select_identical_to_naive(self, duplicate_repository, matcher_cls, threshold, top_k):
        schema = paper_personal_schema()
        naive = MappingElementSelector(matcher_cls(), threshold=threshold, top_k=top_k, use_batch=False)
        batch = MappingElementSelector(matcher_cls(), threshold=threshold, top_k=top_k, use_batch=True)
        naive_counters, batch_counters = CounterSet(), CounterSet()
        naive_sets = naive.select(schema, duplicate_repository, counters=naive_counters)
        batch_sets = batch.select(schema, duplicate_repository, counters=batch_counters)
        assert snapshot(naive_sets) == snapshot(batch_sets)
        # The logical comparison count is path-independent.
        assert naive_counters.get("element_comparisons") == batch_counters.get("element_comparisons")
        assert naive_counters.get("mapping_elements") == batch_counters.get("mapping_elements")

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_repositories(self, seed):
        repository = random_repository(seed=seed + 100)
        schema = purchase_personal_schema()
        threshold = random.Random(seed).choice([0.3, 0.5, 0.7, 0.9])
        naive = MappingElementSelector(FuzzyNameMatcher(), threshold=threshold, use_batch=False)
        batch = MappingElementSelector(FuzzyNameMatcher(), threshold=threshold, use_batch=True)
        assert snapshot(naive.select(schema, repository)) == snapshot(batch.select(schema, repository))

    def test_generated_repository_repeated_queries(self):
        repository = RepositoryGenerator(
            RepositoryProfile(target_node_count=600, min_tree_size=12, max_tree_size=20, name="gen")
        ).generate()
        schema = paper_personal_schema()
        naive = MappingElementSelector(FuzzyNameMatcher(), threshold=0.6, use_batch=False)
        batch = MappingElementSelector(FuzzyNameMatcher(), threshold=0.6, use_batch=True)
        reference = snapshot(naive.select(schema, repository))
        # Second query round exercises the cross-query memo; results must not drift.
        counters = CounterSet()
        for _ in range(3):
            assert snapshot(batch.select(schema, repository, counters=counters)) == reference
        assert counters.get("index_hits") > 0

    @pytest.mark.parametrize("matcher_cls", [FuzzyNameMatcher, TokenNameMatcher, NGramNameMatcher])
    def test_batch_counters_account_for_every_pair(self, duplicate_repository, matcher_cls):
        """pruned + index_hits + kernel_calls == pairs, for every batch matcher."""
        schema = paper_personal_schema()
        counters = CounterSet()
        selector = MappingElementSelector(matcher_cls(), threshold=0.8, use_batch=True)
        selector.select(schema, duplicate_repository, counters=counters)
        pairs = schema.node_count * duplicate_repository.node_count
        assert counters.get("element_comparisons") == pairs
        accounted = (
            counters.get("comparisons_pruned")
            + counters.get("index_hits")
            + counters.get("similarity_kernel_calls")
        )
        assert accounted == pairs

    def test_use_batch_requires_batch_matcher(self, duplicate_repository):
        selector = MappingElementSelector(StructuralContextMatcher(), use_batch=True)
        with pytest.raises(MatcherError):
            selector.select(paper_personal_schema(), duplicate_repository)

    def test_structural_matcher_uses_naive_path(self, duplicate_repository):
        selector = MappingElementSelector(StructuralContextMatcher(), threshold=0.1)
        assert not selector._batch_capable()
        sets = selector.select(paper_personal_schema(), duplicate_repository)
        assert set(sets.personal_node_ids) == set(paper_personal_schema().node_ids())

    def test_ngram_matcher_with_non_index_size_falls_back(self, duplicate_repository):
        matcher = NGramNameMatcher(size=2)
        assert not matcher.supports_batch
        selector = MappingElementSelector(matcher, threshold=0.5)
        assert not selector._batch_capable()
        # Auto mode silently uses the naive loop.
        sets = selector.select(paper_personal_schema(), duplicate_repository)
        assert sets.total() >= 0


class TestRepositoryNameIndex:
    def test_groups_refs_by_folded_name(self, duplicate_repository):
        index = RepositoryNameIndex.for_repository(duplicate_repository, case_sensitive=False)
        total = sum(index.fanout(name_id) for name_id in range(index.unique_name_count))
        assert total == duplicate_repository.node_count
        for name_id, key in enumerate(index.keys):
            for ref in index.refs_for_id(name_id):
                assert duplicate_repository.node(ref).name.lower() == key

    def test_case_modes_are_cached_separately(self, duplicate_repository):
        folded = RepositoryNameIndex.for_repository(duplicate_repository, case_sensitive=False)
        raw = RepositoryNameIndex.for_repository(duplicate_repository, case_sensitive=True)
        assert folded is RepositoryNameIndex.for_repository(duplicate_repository, case_sensitive=False)
        assert raw is not folded
        assert raw.unique_name_count >= folded.unique_name_count

    def test_cache_invalidated_by_add_tree(self):
        repository = random_repository(seed=7, trees=3)
        before = RepositoryNameIndex.for_repository(repository)
        builder = TreeBuilder("extra")
        root = builder.root("brandNewRootName")
        builder.child(root, "brandNewChildName")
        repository.add_tree(builder.build())
        after = RepositoryNameIndex.for_repository(repository)
        assert after is not before
        assert after.id_for("brandnewrootname") is not None

    def test_find_by_name_matches_linear_scan(self, duplicate_repository):
        for target in ("name", "email", "notInTheRepository"):
            expected = [
                ref
                for ref, node in duplicate_repository.iter_nodes()
                if node.name.lower() == target.lower()
            ]
            assert duplicate_repository.find_by_name(target) == expected

    @pytest.mark.parametrize("threshold", [0.1, 0.5, 0.8, 0.95])
    def test_fuzzy_prefilter_is_lossless(self, duplicate_repository, threshold):
        """No name scoring >= threshold is ever pruned (the core invariant)."""
        index = RepositoryNameIndex.for_repository(duplicate_repository, case_sensitive=False)
        for query in ["name", "adress", "e-mail", "titles", "qty", "", "completelyunrelated"]:
            survivors, _ = index.fuzzy_candidates(query, threshold)
            survivor_set = set(survivors)
            for name_id, key in enumerate(index.keys):
                if fuzzy_similarity(query, key, case_sensitive=True) >= threshold:
                    assert name_id in survivor_set, (query, key, threshold)


class TestLRUMemo:
    def test_evicts_least_recently_used(self):
        memo = LRUMemo(capacity=2)
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refresh "a"
        memo.put("c", 3)
        assert memo.get("b") is None
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        assert len(memo) == 2

    def test_zero_capacity_stores_nothing(self):
        memo = LRUMemo(capacity=0)
        memo.put("a", 1)
        assert memo.get("a") is None


class TestMappingElementSetsFastPaths:
    def test_restrict_to_refs_preserves_order_and_contents(self, duplicate_repository):
        schema = paper_personal_schema()
        sets = MappingElementSelector(FuzzyNameMatcher(), threshold=0.3).select(
            schema, duplicate_repository
        )
        keep = {e.ref.global_id for i, e in enumerate(sets.iter_all_elements()) if i % 2 == 0}
        restricted = sets.restrict_to_refs(keep)
        assert restricted.personal_node_ids == sets.personal_node_ids
        for node_id in sets.personal_node_ids:
            expected = [e for e in sets.elements_for(node_id) if e.ref.global_id in keep]
            assert restricted.elements_for(node_id) == expected

    def test_iter_all_elements_matches_all_elements(self, duplicate_repository):
        sets = MappingElementSelector(FuzzyNameMatcher(), threshold=0.3).select(
            paper_personal_schema(), duplicate_repository
        )
        assert list(sets.iter_all_elements()) == sets.all_elements()

    def test_elements_for_unknown_node_still_raises(self, duplicate_repository):
        sets = MappingElementSelector(FuzzyNameMatcher(), threshold=0.3).select(
            paper_personal_schema(), duplicate_repository
        )
        with pytest.raises(MatcherError):
            sets.elements_for(999)


def test_batch_matcher_interface_is_exported():
    assert issubclass(FuzzyNameMatcher, BatchElementMatcher)
    assert issubclass(TokenNameMatcher, BatchElementMatcher)
    assert issubclass(NGramNameMatcher, BatchElementMatcher)

"""Banded (prefix-filter) candidate generation: lossless vs the linear scan.

The banded path is an access-path switch, not a semantic one: whenever the
band bound is provable it must return exactly the linear prefilter's survivor
set and pruned-pair count, and it must decline (fall back) whenever the bound
would be unsound.  These tests run the two paths side by side over real and
adversarial queries at thresholds below, at, and above the engagement point.
"""

from __future__ import annotations

import pytest

from repro.matchers.index import RepositoryNameIndex
from repro.service import load_snapshot, write_snapshot
from repro.service.service import MatchingService
from repro.storage import FrozenNameIndex, freeze_service
from repro.workload.generator import RepositoryGenerator, RepositoryProfile

#: Low thresholds where the length bound does the pruning, mid thresholds
#: where the band declines, and the ~0.9+ region where it engages (the edit
#: budget must drop to ~1 before ``m = g - 6*limit`` clears 1).
THRESHOLDS = [0.3, 0.45, 0.6, 0.75, 0.85, 0.9, 0.92, 0.95]


@pytest.fixture(scope="module")
def repository():
    profile = RepositoryProfile(
        target_node_count=1500,
        min_tree_size=12,
        max_tree_size=70,
        seed=99,
        name="banded-repo",
    )
    return RepositoryGenerator(profile).generate()


@pytest.fixture(scope="module")
def linear_index(repository):
    return RepositoryNameIndex(repository)


@pytest.fixture(scope="module")
def banded_index(repository):
    return RepositoryNameIndex(repository).enable_banded()


@pytest.fixture(scope="module")
def queries(linear_index):
    """Exact hits, near misses, and strings unlike anything indexed."""
    sampled = [linear_index.keys[i] for i in range(0, len(linear_index.keys), 37)]
    perturbed = [key[:-1] + "x" for key in sampled[:10] if len(key) > 3]
    return sampled + perturbed + [
        "name",
        "adress",
        "emial",
        "customernumber",
        "zzzzzzzz",
        "a",
        "shippingaddressline",
    ]


class TestLosslessness:
    @pytest.mark.parametrize("threshold", THRESHOLDS)
    def test_survivors_and_pruned_counts_match_the_linear_scan(
        self, linear_index, banded_index, queries, threshold
    ):
        for query in queries:
            linear_survivors, linear_pruned = linear_index.fuzzy_candidates(query, threshold)
            banded_survivors, banded_pruned = banded_index.fuzzy_candidates(query, threshold)
            assert sorted(banded_survivors) == sorted(linear_survivors), (query, threshold)
            assert banded_pruned == linear_pruned, (query, threshold)

    def test_the_band_actually_engages_at_high_thresholds(self, banded_index, queries):
        """Guard against a vacuous differential: the banded path must fire."""
        engaged = 0
        for query in queries:
            grams = banded_index.query_grams(query)
            if not grams:
                continue
            if banded_index._banded_candidates(len(query), grams, 0.92) is not None:
                engaged += 1
        assert engaged > 0

    def test_low_thresholds_fall_back_to_the_linear_scan(self, banded_index):
        """``min_required <= 1`` makes the band unprovable — must return None."""
        query = "customernumber"
        grams = banded_index.query_grams(query)
        assert banded_index._banded_candidates(len(query), grams, 0.45) is None
        assert banded_index._banded_candidates(len(query), grams, 0.0) is None

    def test_zero_threshold_prunes_nothing(self, linear_index, banded_index):
        for index in (linear_index, banded_index):
            survivors, pruned = index.fuzzy_candidates("anything", 0.0)
            assert pruned == 0
            assert len(survivors) == len(index.keys)


class TestFrozenIndexParity:
    @pytest.fixture(scope="class")
    def index_pair(self, repository, tmp_path_factory):
        """The same repository's index via JSON-load and via the frozen mmap."""
        target = tmp_path_factory.mktemp("banded")
        service = MatchingService(repository)
        write_snapshot(service, target / "snap.json")
        freeze_service(service, target / "snap.frozen")
        plain = load_snapshot(target / "snap.json").repository.name_index()
        frozen = load_snapshot(target / "snap.frozen").repository.name_index()
        assert type(frozen) is FrozenNameIndex
        return plain, frozen

    @pytest.mark.parametrize("threshold", [0.45, 0.75, 0.92])
    def test_frozen_candidates_match_the_plain_index(self, index_pair, queries, threshold):
        plain, frozen = index_pair
        assert frozen.banded_enabled  # always on for the frozen mmap index
        for query in queries:
            plain_survivors, plain_pruned = plain.fuzzy_candidates(query, threshold)
            frozen_survivors, frozen_pruned = frozen.fuzzy_candidates(query, threshold)
            # Name-id numbering is shared (first-occurrence order), so the
            # survivor sets must agree id-for-id, not just key-for-key.
            assert sorted(frozen_survivors) == sorted(plain_survivors), (query, threshold)
            assert frozen_pruned == plain_pruned, (query, threshold)
            assert [frozen.keys[i] for i in frozen_survivors[:5]] == [
                plain.keys[i] for i in plain_survivors[:5]
            ] or sorted(frozen.keys[i] for i in frozen_survivors) == sorted(
                plain.keys[i] for i in plain_survivors
            )

"""Tests for the string similarity metrics (the CompareStringFuzzy stand-in)."""

import pytest

from repro.matchers.string_metrics import (
    damerau_levenshtein_distance,
    fuzzy_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    longest_common_prefix,
    ngram_similarity,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("book", "book") == 0

    def test_empty_strings(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3
        assert levenshtein_distance("", "") == 0

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("book", "back", 2),
            ("author", "authors", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected


class TestDamerauLevenshtein:
    def test_transposition_counts_as_one(self):
        assert damerau_levenshtein_distance("ab", "ba") == 1
        assert levenshtein_distance("ab", "ba") == 2

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("ca", "abc", 2),        # the classic unrestricted-distance example
            ("book", "boko", 1),
            ("address", "adress", 1),
            ("", "xyz", 3),
            ("same", "same", 0),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert damerau_levenshtein_distance(a, b) == expected

    def test_never_exceeds_levenshtein(self):
        pairs = [("author", "writer"), ("title", "titel"), ("shelf", "self"), ("name", "mane")]
        for a, b in pairs:
            assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestFuzzySimilarity:
    def test_identical_names_score_one(self):
        assert fuzzy_similarity("author", "author") == 1.0

    def test_case_insensitive_by_default(self):
        assert fuzzy_similarity("Author", "author") == 1.0
        assert fuzzy_similarity("Author", "author", case_sensitive=True) < 1.0

    def test_disjoint_names_score_zero(self):
        assert fuzzy_similarity("book", "shelf") == 0.0

    def test_close_names_score_high(self):
        assert fuzzy_similarity("authorName", "author_name") > 0.85
        assert fuzzy_similarity("titel", "title") >= 0.6

    def test_range(self):
        for a, b in [("a", "b"), ("address", "addr"), ("x", "xyzzy"), ("", "")]:
            assert 0.0 <= fuzzy_similarity(a, b) <= 1.0

    def test_symmetry(self):
        assert fuzzy_similarity("email", "mail") == fuzzy_similarity("mail", "email")


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_similarity("name", "name") == 1.0
        assert jaro_winkler_similarity("name", "name") == 1.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_prefix_boost(self):
        plain = jaro_similarity("address", "addresses")
        boosted = jaro_winkler_similarity("address", "addresses")
        assert boosted >= plain

    def test_invalid_prefix_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_scale=0.5)


class TestNgram:
    def test_identical(self):
        assert ngram_similarity("title", "title") == 1.0

    def test_unrelated(self):
        assert ngram_similarity("abc", "xyz") == 0.0

    def test_partial_overlap(self):
        assert 0.0 < ngram_similarity("authorName", "authorLabel") < 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ngram_similarity("a", "b", size=0)


def test_longest_common_prefix():
    assert longest_common_prefix("address", "addr") == 4
    assert longest_common_prefix("abc", "xbc") == 0

"""Tests for name tokenization, abbreviation expansion and the synonym dictionary."""

import pytest

from repro.matchers.synonyms import SynonymDictionary, default_synonyms
from repro.matchers.tokenize import (
    expand_abbreviations,
    normalize_name,
    split_camel_case,
    tokenize_name,
)


class TestTokenize:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("authorName", ["author", "name"]),
            ("AuthorFirstName", ["author", "first", "name"]),
            ("author_name", ["author", "name"]),
            ("ship-to-address", ["ship", "to", "address"]),
            ("address2", ["address", "2"]),
            ("ISBN", ["isbn"]),
            ("XMLSchema", ["xml", "schema"]),
            ("", []),
            ("   ", []),
        ],
    )
    def test_tokenize_name(self, name, expected):
        assert tokenize_name(name) == expected

    def test_split_camel_case_preserves_case(self):
        assert split_camel_case("authorFirstName") == ["author", "First", "Name"]
        assert split_camel_case("") == []

    def test_expand_abbreviations(self):
        assert expand_abbreviations(["cust", "addr"]) == ["customer", "address"]
        assert expand_abbreviations(["title"]) == ["title"]
        assert expand_abbreviations(["no"], table={"no": "number"}) == ["number"]

    def test_normalize_name(self):
        assert normalize_name("custAddr") == "customer address"
        assert normalize_name("custAddr", expand=False) == "cust addr"


class TestSynonymDictionary:
    def test_default_dictionary_contains_expected_groups(self):
        synonyms = default_synonyms()
        assert synonyms.are_synonyms("author", "writer")
        assert synonyms.are_synonyms("email", "mail")
        assert synonyms.are_synonyms("address", "location")
        assert not synonyms.are_synonyms("author", "address")

    def test_identity_is_always_synonymous(self):
        assert SynonymDictionary().are_synonyms("anything", "anything")

    def test_case_and_whitespace_insensitive(self):
        synonyms = default_synonyms()
        assert synonyms.are_synonyms(" Author ", "WRITER")

    def test_synonyms_of_excludes_token_itself(self):
        synonyms = default_synonyms()
        group = synonyms.synonyms_of("author")
        assert "writer" in group and "author" not in group
        assert synonyms.synonyms_of("unknown-token") == frozenset()

    def test_add_group_merges_overlapping_groups(self):
        synonyms = SynonymDictionary([["a", "b"], ["c", "d"]])
        assert not synonyms.are_synonyms("a", "c")
        synonyms.add_group(["b", "c"])
        assert synonyms.are_synonyms("a", "d")

    def test_small_groups_are_ignored(self):
        synonyms = SynonymDictionary()
        synonyms.add_group(["single"])
        assert "single" not in synonyms
        assert len(synonyms) == 0

    def test_contains_and_len(self):
        synonyms = SynonymDictionary([["x", "y"]])
        assert "x" in synonyms and "z" not in synonyms
        assert len(synonyms) == 1

"""Tests for the element matchers (name, datatype, structure) and combiners."""

import pytest

from repro.errors import MatcherError
from repro.matchers.base import MatchContext
from repro.matchers.combiner import AverageCombiner, MatcherCombination, MaxCombiner, WeightedCombiner
from repro.matchers.datatype import DataTypeMatcher, compatibility
from repro.matchers.name import FuzzyNameMatcher, TokenNameMatcher
from repro.matchers.structure import StructuralContextMatcher
from repro.matchers.synonyms import default_synonyms
from repro.schema.node import DataType, SchemaNode


def node(name, datatype=DataType.UNKNOWN):
    return SchemaNode(name=name, datatype=datatype)


class TestFuzzyNameMatcher:
    def test_identical_names(self):
        matcher = FuzzyNameMatcher()
        assert matcher(node("author"), node("author")) == 1.0
        assert matcher(node("Author"), node("author")) == 1.0

    def test_dissimilar_names(self):
        assert FuzzyNameMatcher()(node("book"), node("shelf")) == 0.0

    def test_case_sensitive_mode(self):
        matcher = FuzzyNameMatcher(case_sensitive=True)
        assert matcher(node("Author"), node("author")) < 1.0

    def test_cache_returns_consistent_results(self):
        matcher = FuzzyNameMatcher(cache_size=10)
        first = matcher(node("authorName"), node("author_name"))
        second = matcher(node("authorName"), node("author_name"))
        assert first == second

    def test_invalid_cache_size(self):
        with pytest.raises(MatcherError):
            FuzzyNameMatcher(cache_size=-1)


class TestTokenNameMatcher:
    def test_identical_token_lists(self):
        matcher = TokenNameMatcher()
        assert matcher(node("authorName"), node("author_name")) == 1.0

    def test_synonyms_grant_full_token_credit(self):
        with_synonyms = TokenNameMatcher(synonyms=default_synonyms())
        without = TokenNameMatcher(synonyms=None)
        assert with_synonyms(node("author"), node("writer")) > without(node("author"), node("writer"))
        assert with_synonyms(node("author"), node("writer")) >= 0.9

    def test_abbreviation_expansion(self):
        matcher = TokenNameMatcher()
        assert matcher(node("custAddr"), node("customerAddress")) == 1.0

    def test_partial_overlap_scores_between_zero_and_one(self):
        matcher = TokenNameMatcher()
        score = matcher(node("authorName"), node("author"))
        assert 0.5 < score < 1.0

    def test_empty_tokens_score_zero(self):
        matcher = TokenNameMatcher()
        assert matcher(node("123"), node("...name...")) <= 1.0

    def test_invalid_coverage_weight(self):
        with pytest.raises(MatcherError):
            TokenNameMatcher(coverage_weight=2.0)


class TestDataTypeMatcher:
    def test_same_type(self):
        matcher = DataTypeMatcher()
        assert matcher(node("a", DataType.STRING), node("b", DataType.STRING)) == 1.0

    def test_compatible_types(self):
        matcher = DataTypeMatcher()
        assert matcher(node("a", DataType.INTEGER), node("b", DataType.DECIMAL)) == 0.9
        assert matcher(node("a", DataType.DATE), node("b", DataType.DATETIME)) == 0.9

    def test_incompatible_types(self):
        matcher = DataTypeMatcher()
        assert matcher(node("a", DataType.BOOLEAN), node("b", DataType.DATE)) == 0.0

    def test_unknown_is_neutral(self):
        matcher = DataTypeMatcher(unknown_score=0.5)
        assert matcher(node("a"), node("b", DataType.STRING)) == 0.5

    def test_compatibility_is_symmetric(self):
        for first in DataType:
            for second in DataType:
                assert compatibility(first, second) == compatibility(second, first)

    def test_invalid_unknown_score(self):
        with pytest.raises(ValueError):
            DataTypeMatcher(unknown_score=1.5)


class TestStructuralContextMatcher:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(MatcherError):
            StructuralContextMatcher(parent_weight=0.5, children_weight=0.5, path_weight=0.5)

    def test_without_context_falls_back_to_name_similarity(self):
        matcher = StructuralContextMatcher()
        assert matcher(node("book"), node("book")) == 1.0

    def test_similar_neighborhoods_score_higher(self, book_schema, small_repository):
        matcher = StructuralContextMatcher()
        # "title" under lib/book vs "title" in the library tree: similar context.
        title_ref = small_repository.find_by_name("title")[0]
        good_context = MatchContext(
            personal_schema=book_schema,
            repository=small_repository,
            personal_node_id=book_schema.find_by_name("title")[0],
            repository_ref=title_ref,
        )
        good = matcher(
            book_schema.node(book_schema.find_by_name("title")[0]),
            small_repository.node(title_ref),
            good_context,
        )
        # Same personal node against a commerce leaf: dissimilar context.
        price_ref = small_repository.find_by_name("price")[0]
        bad_context = MatchContext(
            personal_schema=book_schema,
            repository=small_repository,
            personal_node_id=book_schema.find_by_name("title")[0],
            repository_ref=price_ref,
        )
        bad = matcher(
            book_schema.node(book_schema.find_by_name("title")[0]),
            small_repository.node(price_ref),
            bad_context,
        )
        assert good > bad


class TestCombiners:
    def test_average_combiner(self):
        assert AverageCombiner().combine([("a", 0.2), ("b", 0.8)]) == pytest.approx(0.5)
        assert AverageCombiner().combine([]) == 0.0

    def test_max_combiner(self):
        assert MaxCombiner().combine([("a", 0.2), ("b", 0.8)]) == 0.8

    def test_weighted_combiner(self):
        combiner = WeightedCombiner({"name": 3.0, "type": 1.0})
        assert combiner.combine([("name", 1.0), ("type", 0.0)]) == pytest.approx(0.75)

    def test_weighted_combiner_ignores_unknown_matchers(self):
        combiner = WeightedCombiner({"name": 1.0})
        assert combiner.combine([("name", 0.6), ("other", 1.0)]) == pytest.approx(0.6)

    def test_weighted_combiner_validation(self):
        with pytest.raises(MatcherError):
            WeightedCombiner({})
        with pytest.raises(MatcherError):
            WeightedCombiner({"a": -1.0})
        with pytest.raises(MatcherError):
            WeightedCombiner({"a": 0.0})

    def test_combination_behaves_like_a_matcher(self):
        combination = MatcherCombination(
            [FuzzyNameMatcher(), DataTypeMatcher()],
            WeightedCombiner({"fuzzy-name": 2.0, "datatype": 1.0}),
        )
        score = combination(node("author", DataType.STRING), node("author", DataType.STRING))
        assert score == 1.0
        breakdown = combination.breakdown(node("author"), node("writer"))
        assert set(breakdown) == {"fuzzy-name", "datatype"}

    def test_combination_requires_unique_names(self):
        with pytest.raises(MatcherError):
            MatcherCombination([FuzzyNameMatcher(), FuzzyNameMatcher()])
        with pytest.raises(MatcherError):
            MatcherCombination([])

    def test_combination_reports_structural_flag(self):
        assert MatcherCombination([FuzzyNameMatcher(), StructuralContextMatcher()]).is_structural
        assert not MatcherCombination([FuzzyNameMatcher()]).is_structural

"""Property-based tests for the edit-distance metrics (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.matchers.string_metrics import (
    damerau_levenshtein_distance,
    fuzzy_similarity,
    levenshtein_distance,
)

words = st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_edit_distances_are_symmetric(a, b):
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
    assert damerau_levenshtein_distance(a, b) == damerau_levenshtein_distance(b, a)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_edit_distance_identity_of_indiscernibles(a, b):
    assert (levenshtein_distance(a, b) == 0) == (a == b)
    assert (damerau_levenshtein_distance(a, b) == 0) == (a == b)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_edit_distance_bounded_by_longer_length(a, b):
    bound = max(len(a), len(b))
    assert levenshtein_distance(a, b) <= bound
    assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)
    assert damerau_levenshtein_distance(a, b) >= abs(len(a) - len(b))


@given(words, words, words)
@settings(max_examples=100, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_fuzzy_similarity_in_unit_interval_and_symmetric(a, b):
    score = fuzzy_similarity(a, b)
    assert 0.0 <= score <= 1.0
    assert score == fuzzy_similarity(b, a)
    if a == b:
        assert score == 1.0


@given(words)
@settings(max_examples=100, deadline=None)
def test_single_edit_changes_distance_by_at_most_one(a):
    modified = a + "x"
    assert abs(levenshtein_distance(a, modified)) == 1
    assert damerau_levenshtein_distance(a, modified) == 1

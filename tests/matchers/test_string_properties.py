"""Property-based tests for the edit-distance metrics (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.matchers.string_metrics import (
    bounded_damerau_levenshtein,
    damerau_levenshtein_distance,
    fuzzy_similarity,
    levenshtein_distance,
)

words = st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122), max_size=12)
# A tiny alphabet maximizes transpositions and look-back hits, the cases where
# the unrestricted recurrence differs from the simpler OSA variant.
dense_words = st.text(alphabet=st.sampled_from("abc"), max_size=10)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_edit_distances_are_symmetric(a, b):
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
    assert damerau_levenshtein_distance(a, b) == damerau_levenshtein_distance(b, a)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_edit_distance_identity_of_indiscernibles(a, b):
    assert (levenshtein_distance(a, b) == 0) == (a == b)
    assert (damerau_levenshtein_distance(a, b) == 0) == (a == b)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_edit_distance_bounded_by_longer_length(a, b):
    bound = max(len(a), len(b))
    assert levenshtein_distance(a, b) <= bound
    assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)
    assert damerau_levenshtein_distance(a, b) >= abs(len(a) - len(b))


@given(words, words, words)
@settings(max_examples=100, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


@given(words, words)
@settings(max_examples=150, deadline=None)
def test_fuzzy_similarity_in_unit_interval_and_symmetric(a, b):
    score = fuzzy_similarity(a, b)
    assert 0.0 <= score <= 1.0
    assert score == fuzzy_similarity(b, a)
    if a == b:
        assert score == 1.0


@given(words)
@settings(max_examples=100, deadline=None)
def test_single_edit_changes_distance_by_at_most_one(a):
    modified = a + "x"
    assert abs(levenshtein_distance(a, modified)) == 1
    assert damerau_levenshtein_distance(a, modified) == 1


@given(words, words)
@settings(max_examples=300, deadline=None)
def test_bounded_kernel_equals_reference_with_loose_budget(a, b):
    """With a budget covering the worst case, the pruned kernel is exact."""
    limit = max(len(a), len(b))
    assert bounded_damerau_levenshtein(a, b, limit) == damerau_levenshtein_distance(a, b)


@given(dense_words, dense_words, st.integers(min_value=0, max_value=12))
@settings(max_examples=500, deadline=None)
def test_bounded_kernel_contract_under_any_budget(a, b, limit):
    """Exact when the reference distance fits the budget, ``limit + 1`` otherwise."""
    reference = damerau_levenshtein_distance(a, b)
    expected = reference if reference <= limit else limit + 1
    assert bounded_damerau_levenshtein(a, b, limit) == expected


@given(dense_words, dense_words)
@settings(max_examples=300, deadline=None)
def test_bounded_kernel_handles_transposition_lookback(a, b):
    """Unrestricted transpositions (e.g. d('ca','abc') = 2, not 3) survive pruning."""
    reference = damerau_levenshtein_distance(a, b)
    assert bounded_damerau_levenshtein(a, b, reference) == reference


def test_bounded_kernel_known_unrestricted_case():
    # The classic case separating unrestricted Damerau-Levenshtein (2) from
    # the restricted/OSA variant (3).
    assert damerau_levenshtein_distance("ca", "abc") == 2
    assert bounded_damerau_levenshtein("ca", "abc", 5) == 2
    assert bounded_damerau_levenshtein("ca", "abc", 1) == 2


def test_bounded_kernel_rejects_negative_budget():
    import pytest

    with pytest.raises(ValueError):
        bounded_damerau_levenshtein("a", "b", -1)


@given(words, words, st.sampled_from([0.2, 0.5, 0.75, 0.9, 1.0]))
@settings(max_examples=300, deadline=None)
def test_fuzzy_similarity_min_similarity_hint_is_consistent(a, b, threshold):
    """Scores >= the hint are exact; scores below it may collapse to 0."""
    plain = fuzzy_similarity(a, b)
    hinted = fuzzy_similarity(a, b, min_similarity=threshold)
    if plain >= threshold:
        assert hinted == plain
    else:
        assert hinted == plain or hinted == 0.0
        assert hinted < threshold

"""Tests for the element-matching stage (mapping-element selection)."""

import pytest

from repro.errors import MatcherError
from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElement, MappingElementSelector, MappingElementSets
from repro.schema.repository import RepositoryNodeRef
from repro.utils.counters import CounterSet


def ref(global_id, tree_id=0, node_id=None):
    return RepositoryNodeRef(global_id=global_id, tree_id=tree_id, node_id=node_id if node_id is not None else global_id)


class TestMappingElementSets:
    def test_requires_personal_nodes(self):
        with pytest.raises(MatcherError):
            MappingElementSets([])

    def test_add_and_query(self):
        sets = MappingElementSets([0, 1])
        sets.add(MappingElement(0, ref(5), 0.9))
        sets.add(MappingElement(1, ref(6), 0.8))
        sets.add(MappingElement(1, ref(7), 0.7))
        assert sets.sizes() == {0: 1, 1: 2}
        assert sets.total() == 3
        assert len(sets.all_elements()) == 3
        assert sets.is_complete()

    def test_add_rejects_unknown_personal_node(self):
        sets = MappingElementSets([0])
        with pytest.raises(MatcherError):
            sets.add(MappingElement(3, ref(1), 0.5))

    def test_smallest_set_node_is_me_min(self):
        sets = MappingElementSets([0, 1, 2])
        for global_id in range(4):
            sets.add(MappingElement(0, ref(global_id), 0.5))
        sets.add(MappingElement(1, ref(10), 0.5))
        sets.add(MappingElement(2, ref(20), 0.5))
        sets.add(MappingElement(2, ref(21), 0.5))
        assert sets.smallest_set_node() == 1

    def test_restrict_to_refs(self):
        sets = MappingElementSets([0, 1])
        sets.add(MappingElement(0, ref(1), 0.9))
        sets.add(MappingElement(0, ref(2), 0.9))
        sets.add(MappingElement(1, ref(3), 0.9))
        restricted = sets.restrict_to_refs({1, 3})
        assert restricted.sizes() == {0: 1, 1: 1}
        assert restricted.is_complete()
        empty_side = sets.restrict_to_refs({2})
        assert not empty_side.is_complete()

    def test_incomplete_when_a_node_has_no_candidates(self):
        sets = MappingElementSets([0, 1])
        sets.add(MappingElement(0, ref(1), 0.9))
        assert not sets.is_complete()


class TestMappingElementSelector:
    def test_selects_only_above_threshold(self, paper_schema, small_repository):
        selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.99)
        sets = selector.select(paper_schema, small_repository)
        for _, elements in sets:
            assert all(element.similarity >= 0.99 for element in elements)
        # Exact-name candidates exist for name, address and email in the contact tree.
        assert sets.is_complete()

    def test_lower_threshold_keeps_more_candidates(self, paper_schema, small_repository):
        strict = MappingElementSelector(FuzzyNameMatcher(), threshold=0.9).select(
            paper_schema, small_repository
        )
        loose = MappingElementSelector(FuzzyNameMatcher(), threshold=0.3).select(
            paper_schema, small_repository
        )
        assert loose.total() > strict.total()

    def test_top_k_caps_candidates_per_node(self, paper_schema, small_repository):
        selector = MappingElementSelector(FuzzyNameMatcher(), threshold=0.1, top_k=2)
        sets = selector.select(paper_schema, small_repository)
        assert all(size <= 2 for size in sets.sizes().values())

    def test_counters_record_comparisons(self, paper_schema, small_repository):
        counters = CounterSet()
        MappingElementSelector(FuzzyNameMatcher(), threshold=0.5).select(
            paper_schema, small_repository, counters=counters
        )
        expected = paper_schema.node_count * small_repository.node_count
        assert counters["element_comparisons"] == expected
        assert counters["mapping_elements"] >= 1

    def test_invalid_parameters(self):
        with pytest.raises(MatcherError):
            MappingElementSelector(FuzzyNameMatcher(), threshold=1.5)
        with pytest.raises(MatcherError):
            MappingElementSelector(FuzzyNameMatcher(), top_k=0)

    def test_candidates_reference_real_repository_nodes(self, paper_schema, small_repository):
        sets = MappingElementSelector(FuzzyNameMatcher(), threshold=0.6).select(
            paper_schema, small_repository
        )
        for _, elements in sets:
            for element in elements:
                node = small_repository.node(element.ref)
                assert node.name  # resolvable reference

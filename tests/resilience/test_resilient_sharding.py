"""Resilience through the sharded query path: exactness, failover, deadlines.

The contracts under test, in the order the ISSUE states them:

* a :class:`~repro.resilience.FaultPlan` that never fires is *invisible* —
  resilient-mode results are bit-identical to the plain sharded (and thus the
  unsharded) service, property-tested over no-op plans;
* transient faults absorbed by retries/hedging leave results exactly equal to
  the unsharded reference — duplicated attempts cannot perturb the ranking;
* a dead shard degrades the answer to the survivors: the response is marked
  ``degraded`` with the skipped shard ids, and the surviving mappings are
  path-record-identical to a healthy service over only the surviving trees;
* a deadline truncates the search to its incumbents: ``partial`` results are
  an order-preserving subset of the full ranking, and neither partial nor
  degraded answers are ever cached.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import encode
from repro.errors import ShardError
from repro.resilience import (
    BreakerPolicy,
    Deadline,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.schema.builder import TreeBuilder
from repro.schema.repository import SchemaRepository
from repro.service import MatchingService
from repro.shard import ShardedMatchingService
from repro.shard.service import copy_tree
from repro.workload.personal import paper_personal_schema

THRESHOLD = 0.5


def fast_retry(**overrides):
    defaults = dict(base_delay_ms=0.1, max_delay_ms=0.5, jitter=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def make_resilient(repository, resilience, shard_count=3):
    return ShardedMatchingService.from_repository(
        repository, shard_count, element_threshold=THRESHOLD, resilience=resilience
    )


def assert_identical(actual, expected):
    """Bit-identity across the projections a resilient merge could disturb."""
    assert actual.ranking_key() == expected.ranking_key()
    assert [m.cluster_id for m in actual.mappings] == [m.cluster_id for m in expected.mappings]
    assert [m.tree_id for m in actual.mappings] == [m.tree_id for m in expected.mappings]
    assert actual.candidates.personal_node_ids == expected.candidates.personal_node_ids
    assert not actual.partial and not actual.degraded
    assert actual.skipped_shards == ()


def path_records(service, personal, result):
    """Mappings as coordinate-free (score, tree name, path assignment) records."""
    return [
        (record.score, record.tree, record.assignment)
        for record in (
            encode.mapping_record(service.repository, personal, mapping)
            for mapping in result.mappings
        )
    ]


def is_ordered_subset(sub, seq):
    """True when ``sub`` is a subsequence of ``seq`` (order-preserving subset)."""
    iterator = iter(seq)
    return all(any(item == other for other in iterator) for item in sub)


class PollingClock:
    """A clock that advances a fixed step per reading.

    Deadline expiry becomes a function of *how many times the search polled
    the deadline*, not of wall time — the truncation point is deterministic,
    so the prefix-consistency property can be asserted exactly.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def after_polls(polls: int) -> Deadline:
    """A deadline that expires on the ``polls``-th reading of its clock."""
    return Deadline.after_ms(polls * 1000.0, PollingClock())


# -- fault-free plans are invisible -----------------------------------------------


def tiny_repository():
    repository = SchemaRepository(name="tiny")
    for name, spec in (
        ("people", {"person": ["name", "email", "address"]}),
        ("books", {"book": ["title", "author"]}),
        ("orders", {"order": ["item", "price"]}),
    ):
        repository.add_tree(TreeBuilder.from_nested(spec, name=name))
    return repository


@pytest.fixture(scope="module")
def tiny_reference_result():
    return MatchingService(tiny_repository(), element_threshold=THRESHOLD).match(
        paper_personal_schema()
    )


#: Specs that are scheduled but can never change behaviour: a key no shard
#: uses, a coin that always lands on "no fault", a zero-length delay, and a
#: call index no test reaches.
_NOOP_SPECS = (
    FaultSpec(key="shard-99", kind="error"),
    FaultSpec(key="*", kind="error", probability=0.0),
    FaultSpec(key="*", kind="delay", delay_ms=0.0),
    FaultSpec(key="shard-0", kind="error", calls=[10_000]),
)


class TestFaultFreePlansAreInvisible:
    @settings(max_examples=8, deadline=None)
    @given(
        picks=st.lists(st.sampled_from(range(len(_NOOP_SPECS))), max_size=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_noop_plans_are_bit_identical_to_no_plan(self, tiny_reference_result, picks, seed):
        plan = FaultPlan(specs=tuple(_NOOP_SPECS[index] for index in picks), seed=seed)
        policy = ResiliencePolicy(retry=fast_retry(), fault_plan=plan)
        service = make_resilient(tiny_repository(), policy)
        try:
            result = service.match(paper_personal_schema())
        finally:
            service.close()
        assert_identical(result, tiny_reference_result)

    def test_resilient_mode_without_faults_matches_unsharded(
        self, chaos_repository, chaos_schemas, chaos_reference_results
    ):
        policy = ResiliencePolicy(retry=fast_retry(), hedge_delay_ms=50.0)
        service = make_resilient(chaos_repository, policy)
        try:
            for schema, reference in zip(chaos_schemas, chaos_reference_results):
                assert_identical(service.match(schema), reference)
        finally:
            service.close()


# -- transient faults are absorbed exactly ----------------------------------------


class TestTransientFaultsAreAbsorbed:
    def test_retried_queries_match_the_unsharded_service_exactly(
        self, chaos_repository, chaos_schemas, chaos_reference_results
    ):
        # The first call to shards 0 and 1 crashes; retries must recover with
        # zero effect on the merged ranking.
        plan = FaultPlan(
            specs=(
                FaultSpec(key="shard-0", kind="error", calls={"first": 1}),
                FaultSpec(key="shard-1", kind="error", calls={"first": 1}),
            )
        )
        policy = ResiliencePolicy(retry=fast_retry(), fault_plan=plan)
        service = make_resilient(chaos_repository, policy)
        try:
            for schema, reference in zip(chaos_schemas, chaos_reference_results):
                assert_identical(service.match(schema), reference)
            counters = service.counters.as_dict()
        finally:
            service.close()
        assert counters["shard_retries"] == 2
        assert counters["shard_attempt_failures"] == 2
        assert "degraded_queries" not in counters

    def test_hedged_queries_match_the_unsharded_service_exactly(
        self, chaos_repository, chaos_schemas, chaos_reference_results
    ):
        # Every primary attempt against shard 1 straggles for 100ms; the
        # hedge (odd call indexes run clean) wins without changing the answer
        # — shard queries are pure reads, so duplicates are idempotent.
        plan = FaultPlan(
            specs=(
                FaultSpec(key="shard-1", kind="delay", delay_ms=100.0, calls={"every": 2}),
            )
        )
        policy = ResiliencePolicy(retry=fast_retry(), hedge_delay_ms=10.0, fault_plan=plan)
        service = make_resilient(chaos_repository, policy)
        try:
            assert_identical(service.match(chaos_schemas[0]), chaos_reference_results[0])
            counters = service.counters.as_dict()
        finally:
            service.close()
        assert counters["hedges_launched"] >= 1
        assert counters["hedges_won"] >= 1


# -- degraded failover -------------------------------------------------------------


class TestDegradedFailover:
    def acceptance_policy(self):
        # The ISSUE's acceptance scenario: shard 0 permanently dead, shard 1
        # a 100ms straggler (primaries only — hedges run clean).
        plan = FaultPlan(
            specs=(
                FaultSpec(key="shard-0", kind="error", message="shard down"),
                FaultSpec(key="shard-1", kind="delay", delay_ms=100.0, calls={"every": 2}),
            )
        )
        return ResiliencePolicy(
            retry=fast_retry(max_attempts=2),
            hedge_delay_ms=10.0,
            breaker=BreakerPolicy(failure_threshold=2, cooldown_seconds=60.0),
            fault_plan=plan,
        )

    def test_dead_shard_degrades_to_the_survivors_exactly(
        self, chaos_repository, chaos_schemas
    ):
        schema = chaos_schemas[0]
        service = make_resilient(chaos_repository, self.acceptance_policy())
        try:
            result = service.match(schema)
            assert result.degraded
            assert result.skipped_shards == (0,)
            assert not result.partial

            # Ground truth: a healthy unsharded service over only the trees
            # the surviving shards hold (merged-id order keeps tie-breaks
            # aligned).  Coordinates (tree ids, cluster ids) necessarily
            # differ across the two services, so equality is asserted on
            # path records — the stable, coordinate-free mapping identity.
            survivors = SchemaRepository(name="survivors")
            for tree_id, shard_id in enumerate(service.assignment):
                if shard_id != 0:
                    survivors.add_tree(copy_tree(service.tree(tree_id)))
            restricted = MatchingService(survivors, element_threshold=THRESHOLD)
            expected = restricted.match(schema)
            assert path_records(service, schema, result) == path_records(
                restricted, schema, expected
            )

            counters = service.counters.as_dict()
            assert counters["degraded_queries"] == 1
            assert counters["shards_skipped"] == 1
            assert counters["hedges_launched"] >= 1
        finally:
            service.close()

    def test_breaker_opens_and_sheds_the_dead_shard(self, chaos_repository, chaos_schemas):
        service = make_resilient(chaos_repository, self.acceptance_policy())
        try:
            first = service.match(chaos_schemas[0])
            # Two failed attempts tripped shard 0's breaker; later queries
            # shed it instead of re-probing, and stay degraded-but-correct.
            assert service.stats()["breaker_states"][0] == "open"
            second = service.match(chaos_schemas[0])
            assert second.degraded and second.skipped_shards == (0,)
            assert second.ranking_key() == first.ranking_key()
            assert service.counters.as_dict()["breaker_skips"] >= 1
        finally:
            service.close()

    def test_degraded_results_are_never_cached(self, chaos_repository, chaos_schemas):
        service = ShardedMatchingService.from_repository(
            chaos_repository,
            3,
            element_threshold=THRESHOLD,
            query_cache_size=8,
            resilience=self.acceptance_policy(),
        )
        try:
            service.match(chaos_schemas[0])
            assert service.query_cache_len == 0
        finally:
            service.close()

    def test_every_shard_failing_is_a_loud_error(self, chaos_repository, chaos_schemas):
        plan = FaultPlan(specs=(FaultSpec(key="*", kind="error", message="total outage"),))
        policy = ResiliencePolicy(
            retry=fast_retry(max_attempts=1), breaker=None, fault_plan=plan
        )
        service = make_resilient(chaos_repository, policy)
        try:
            with pytest.raises(ShardError, match="all 3 shards failed"):
                service.match(chaos_schemas[0])
        finally:
            service.close()


# -- deadlines and partial results -------------------------------------------------


class TestPartialAtDeadline:
    @pytest.mark.parametrize("polls", [2, 6])
    def test_incumbents_are_an_ordered_subset_of_the_full_ranking(
        self, chaos_reference, chaos_schemas, chaos_reference_results, polls
    ):
        schema, full = chaos_schemas[0], chaos_reference_results[0]
        partial = chaos_reference.match(schema, deadline=after_polls(polls))
        assert partial.partial
        partial_keys = partial.ranking_key()
        full_keys = full.ranking_key()
        assert len(partial_keys) < len(full_keys)
        assert is_ordered_subset(partial_keys, full_keys)
        assert chaos_reference.counters.as_dict()["partials_returned"] >= 1

    def test_an_unexpired_deadline_changes_nothing(
        self, chaos_reference, chaos_schemas, chaos_reference_results
    ):
        result = chaos_reference.match(chaos_schemas[0], deadline=Deadline.after_ms(3_600_000))
        assert not result.partial
        assert result.ranking_key() == chaos_reference_results[0].ranking_key()

    def test_sharded_partials_are_flagged_and_not_cached(
        self, chaos_repository, chaos_schemas, chaos_reference_results
    ):
        schema, full = chaos_schemas[0], chaos_reference_results[0]
        service = ShardedMatchingService.from_repository(
            chaos_repository, 3, element_threshold=THRESHOLD, query_cache_size=8
        )
        partial = service.match(schema, deadline=after_polls(4))
        assert partial.partial
        assert is_ordered_subset(partial.ranking_key(), full.ranking_key())
        assert service.query_cache_len == 0  # a truncated answer is not canonical
        assert service.counters.as_dict()["partials_returned"] == 1
        complete = service.match(schema)
        assert service.query_cache_len == 1
        assert complete.ranking_key() == full.ranking_key()

"""Shared fixtures for the resilience tests.

Mirrors the shard-layer conftest at a smaller scale: one package-scoped
synthetic repository plus unsharded reference results, so every chaos
configuration (fault plans, retries, hedging, degraded failover) is compared
against the same ground truth without regenerating it per test.
"""

from __future__ import annotations

import pytest

from repro.service import MatchingService
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

THRESHOLD = 0.5


@pytest.fixture(scope="package")
def chaos_repository():
    profile = RepositoryProfile(
        target_node_count=400, min_tree_size=10, max_tree_size=40, seed=31, name="chaos-repo"
    )
    return RepositoryGenerator(profile).generate()


@pytest.fixture(scope="package")
def chaos_reference(chaos_repository):
    return MatchingService(chaos_repository, element_threshold=THRESHOLD)


@pytest.fixture(scope="package")
def chaos_schemas():
    return [paper_personal_schema(), contact_personal_schema(), book_personal_schema()]


@pytest.fixture(scope="package")
def chaos_reference_results(chaos_reference, chaos_schemas):
    return [chaos_reference.match(schema) for schema in chaos_schemas]

"""Deadline semantics: injectable clock, expiry, pickling re-anchoring."""

from __future__ import annotations

import pickle

import pytest

from _clock import TickingClock

from repro.resilience import Deadline


class TestDeadline:
    def test_expires_exactly_at_the_budget(self):
        clock = TickingClock()
        deadline = Deadline.after_ms(100, clock)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(0.1)
        clock.now = 0.099
        assert not deadline.expired()
        clock.now = 0.1
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(0.0)

    def test_remaining_goes_negative_past_expiry(self):
        clock = TickingClock()
        deadline = Deadline.after_ms(50, clock)
        clock.now = 1.0
        assert deadline.remaining() < 0

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_non_positive_budgets_are_rejected(self, bad):
        with pytest.raises(ValueError):
            Deadline.after_ms(bad)

    def test_pickling_preserves_the_remaining_budget(self):
        # Monotonic readings are process-local; a pickled deadline must travel
        # as a duration and re-anchor on the receiver's clock.
        deadline = Deadline.after_ms(60_000)
        clone = pickle.loads(pickle.dumps(deadline))
        assert not clone.expired()
        assert clone.remaining() == pytest.approx(60.0, abs=1.0)

    def test_pickled_expired_deadline_stays_expired(self):
        clock = TickingClock()
        deadline = Deadline.after_ms(10, clock)
        clock.now = 5.0
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expired()

"""A deterministic clock shared by the resilience tests."""


class TickingClock:
    """A fake monotonic clock advanced explicitly by the test."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

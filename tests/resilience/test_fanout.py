"""The resilient fan-out runner: retries, breakers, hedging, deadlines."""

from __future__ import annotations

import threading
import time

import pytest

from _clock import TickingClock

from repro.resilience import (
    BreakerPolicy,
    Deadline,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.fanout import ResilientFanout
from repro.utils.counters import ThreadSafeCounterSet


def fast_policy(**overrides):
    """A policy whose real sleeps are microscopic, for wall-clock-bound tests."""
    defaults = dict(
        retry=RetryPolicy(base_delay_ms=0.1, max_delay_ms=0.5, jitter=0.0),
        breaker=BreakerPolicy(failure_threshold=3, cooldown_seconds=0.05),
    )
    defaults.update(overrides)
    return ResiliencePolicy(**defaults)


class FlakyFn:
    """Fails the first ``failures`` calls per payload, then succeeds."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self._calls: dict = {}
        self._lock = threading.Lock()

    def __call__(self, payload):
        with self._lock:
            count = self._calls.get(payload, 0)
            self._calls[payload] = count + 1
        if count < self.failures:
            raise RuntimeError(f"transient #{count}")
        return payload * 10


class TestRetries:
    def test_transient_failures_are_retried_to_success(self):
        counters = ThreadSafeCounterSet()
        fanout = ResilientFanout(fast_policy(), task_space=2, counters=counters)
        try:
            outcomes = fanout.run(FlakyFn(failures=2), [(0, 1), (1, 2)])
        finally:
            fanout.close()
        assert [outcome.task_id for outcome in outcomes] == [0, 1]
        assert all(outcome.ok for outcome in outcomes)
        assert [outcome.result for outcome in outcomes] == [10, 20]
        assert all(outcome.attempts == 3 for outcome in outcomes)
        assert counters.as_dict()["shard_retries"] == 4

    def test_exhausted_retries_skip_the_task(self):
        def always_fail(_payload):
            raise RuntimeError("permanent")

        fanout = ResilientFanout(fast_policy(), task_space=1)
        try:
            [outcome] = fanout.run(always_fail, [(0, None)])
        finally:
            fanout.close()
        assert not outcome.ok
        assert outcome.skipped_reason == "retries-exhausted"
        assert outcome.attempts == 3
        assert "permanent" in outcome.error

    def test_single_task_runs_inline(self):
        fanout = ResilientFanout(fast_policy(), task_space=1)
        try:
            [outcome] = fanout.run(lambda payload: payload + 1, [(0, 41)])
            assert outcome.ok and outcome.result == 42
            assert outcome.attempts == 1
        finally:
            fanout.close()

    def test_outcomes_follow_task_order_not_completion_order(self):
        def staggered(payload):
            time.sleep(0.02 if payload == 0 else 0.0)
            return payload

        fanout = ResilientFanout(fast_policy(), task_space=4)
        try:
            outcomes = fanout.run(staggered, [(index, index) for index in range(4)])
        finally:
            fanout.close()
        assert [outcome.result for outcome in outcomes] == [0, 1, 2, 3]


class TestBreakers:
    def test_open_breaker_skips_without_calling(self):
        counters = ThreadSafeCounterSet()
        policy = fast_policy(breaker=BreakerPolicy(failure_threshold=2, cooldown_seconds=60.0))
        fanout = ResilientFanout(policy, task_space=1, counters=counters)
        calls = []

        def always_fail(payload):
            calls.append(payload)
            raise RuntimeError("down")

        try:
            [first] = fanout.run(always_fail, [(0, "a")])
            # Two failures trip the breaker, so the third attempt is shed.
            assert not first.ok and first.skipped_reason == "breaker-open"
            calls_after_first = len(calls)
            assert calls_after_first == 2
            [second] = fanout.run(always_fail, [(0, "b")])
        finally:
            fanout.close()
        assert second.skipped_reason == "breaker-open"
        assert len(calls) == calls_after_first  # the open breaker shed the load
        assert counters.as_dict()["breaker_opens"] >= 1
        assert counters.as_dict()["breaker_skips"] >= 1
        assert fanout.breaker_states() == ["open"]

    def test_breakers_are_per_task_id(self):
        policy = fast_policy(breaker=BreakerPolicy(failure_threshold=1, cooldown_seconds=60.0))
        fanout = ResilientFanout(policy, task_space=2)

        def fail_shard_zero(payload):
            if payload == 0:
                raise RuntimeError("down")
            return "ok"

        try:
            fanout.run(fail_shard_zero, [(0, 0), (1, 1)])
            outcomes = fanout.run(fail_shard_zero, [(0, 0), (1, 1)])
        finally:
            fanout.close()
        assert outcomes[0].skipped_reason == "breaker-open"
        assert outcomes[1].ok
        assert fanout.breaker_states() == ["open", "closed"]

    def test_disabled_breaker_always_allows(self):
        fanout = ResilientFanout(fast_policy(breaker=None), task_space=1)
        calls = []

        def always_fail(payload):
            calls.append(payload)
            raise RuntimeError("down")

        try:
            fanout.run(always_fail, [(0, None)])
            fanout.run(always_fail, [(0, None)])
        finally:
            fanout.close()
        assert len(calls) == 6  # 2 queries x 3 attempts, nothing shed
        assert fanout.breaker_states() == [None]


class TestHedging:
    def test_hedge_wins_over_a_straggling_primary(self):
        # Delay faults on even call indexes hit only primary attempts; the
        # hedge (call #1) runs clean and finishes first.
        plan = FaultPlan(
            specs=(FaultSpec(key="shard-0", kind="delay", delay_ms=150.0, calls={"every": 2}),)
        )
        counters = ThreadSafeCounterSet()
        policy = fast_policy(hedge_delay_ms=5.0, fault_plan=plan)
        fanout = ResilientFanout(policy, task_space=1, counters=counters)
        try:
            start = time.monotonic()
            [outcome] = fanout.run(lambda payload: payload, [(0, "fast")])
            elapsed = time.monotonic() - start
        finally:
            fanout.close()
        assert outcome.ok and outcome.result == "fast"
        assert elapsed < 0.15  # did not wait out the 150ms straggler
        assert counters.as_dict()["hedges_launched"] == 1
        assert counters.as_dict()["hedges_won"] == 1

    def test_no_hedge_is_launched_when_the_primary_is_fast(self):
        counters = ThreadSafeCounterSet()
        fanout = ResilientFanout(
            fast_policy(hedge_delay_ms=50.0), task_space=1, counters=counters
        )
        try:
            [outcome] = fanout.run(lambda payload: payload, [(0, "quick")])
        finally:
            fanout.close()
        assert outcome.ok
        assert "hedges_launched" not in counters.as_dict()


class TestDeadlines:
    def test_expired_deadline_abandons_before_any_attempt(self):
        clock = TickingClock()
        deadline = Deadline.after_ms(10, clock)
        clock.now = 1.0
        fanout = ResilientFanout(fast_policy(), task_space=1)
        calls = []
        try:
            [outcome] = fanout.run(calls.append, [(0, "x")], deadline=deadline)
        finally:
            fanout.close()
        assert not outcome.ok
        assert outcome.skipped_reason == "deadline"
        assert calls == []

    def test_deadline_cuts_the_retry_loop_short(self):
        clock = TickingClock()
        deadline = Deadline.after_ms(50, clock)

        def fail_and_burn(_payload):
            clock.advance(0.1)  # each attempt burns past the deadline
            raise RuntimeError("slow failure")

        fanout = ResilientFanout(fast_policy(), task_space=1)
        try:
            [outcome] = fanout.run(fail_and_burn, [(0, None)], deadline=deadline)
        finally:
            fanout.close()
        assert not outcome.ok
        assert outcome.skipped_reason == "deadline"
        assert outcome.attempts == 1  # no second attempt after expiry

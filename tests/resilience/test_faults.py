"""FaultPlan schedules, the injector, and the chaos executor."""

from __future__ import annotations

import json

import pytest

from repro.errors import InjectedFaultError
from repro.resilience import ChaosExecutor, FaultInjector, FaultPlan, FaultSpec, load_fault_plan
from repro.utils.executor import SerialExecutor, ThreadPoolTaskExecutor


class TestFaultSpecSelectors:
    def test_all_matches_every_call(self):
        spec = FaultSpec(key="shard-0", kind="error")
        assert all(spec.matches("shard-0", index, seed=0) for index in range(5))

    def test_key_must_match_unless_wildcard(self):
        spec = FaultSpec(key="shard-0", kind="error")
        assert not spec.matches("shard-1", 0, seed=0)
        wildcard = FaultSpec(key="*", kind="error")
        assert wildcard.matches("shard-1", 0, seed=0)
        assert wildcard.matches("task-9", 3, seed=0)

    def test_explicit_index_list(self):
        spec = FaultSpec(key="k", kind="error", calls=[0, 2])
        hits = [index for index in range(5) if spec.matches("k", index, seed=0)]
        assert hits == [0, 2]

    def test_every_with_offset_selects_a_residue_class(self):
        spec = FaultSpec(key="k", kind="delay", delay_ms=1, calls={"every": 2, "offset": 1})
        hits = [index for index in range(6) if spec.matches("k", index, seed=0)]
        assert hits == [1, 3, 5]

    def test_first_n_selects_a_prefix(self):
        spec = FaultSpec(key="k", kind="error", calls={"first": 2})
        hits = [index for index in range(5) if spec.matches("k", index, seed=0)]
        assert hits == [0, 1]

    def test_probability_is_a_seeded_coin(self):
        spec = FaultSpec(key="k", kind="error", probability=0.5)
        first = [spec.matches("k", index, seed=7) for index in range(50)]
        second = [spec.matches("k", index, seed=7) for index in range(50)]
        assert first == second  # replays exactly
        assert any(first) and not all(first)  # and actually flips
        other_seed = [spec.matches("k", index, seed=8) for index in range(50)]
        assert first != other_seed

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "explode"},
            {"kind": "delay", "delay_ms": -1},
            {"kind": "error", "probability": 1.5},
            {"kind": "error", "calls": {"every": 0}},
            {"kind": "error", "calls": {"every": 2, "offset": 2}},
            {"kind": "error", "calls": {"first": 0}},
            {"kind": "error", "calls": "some"},
        ],
    )
    def test_invalid_specs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(key="k", **kwargs)


class TestPlanSerialisation:
    def plan(self):
        return FaultPlan(
            specs=(
                FaultSpec(key="shard-0", kind="error", message="boom", calls={"first": 1}),
                FaultSpec(key="shard-1", kind="delay", delay_ms=100.0, calls={"every": 2}),
                FaultSpec(key="*", kind="hang", probability=0.25),
            ),
            seed=13,
            hang_ms=500.0,
        )

    def test_round_trips_through_json(self):
        plan = self.plan()
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan

    def test_first_match_wins(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(key="shard-0", kind="error", calls={"first": 1}),
                FaultSpec(key="shard-0", kind="delay", delay_ms=5.0),
            )
        )
        assert plan.fault_for("shard-0", 0).kind == "error"
        assert plan.fault_for("shard-0", 1).kind == "delay"
        assert plan.fault_for("shard-9", 0) is None

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan fields"):
            FaultPlan.from_dict({"specs": [], "surprise": 1})
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            FaultPlan.from_dict({"specs": [{"key": "k", "kind": "error", "extra": 1}]})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(self.plan().to_dict()), encoding="utf-8")
        assert load_fault_plan(path) == self.plan()

    def test_load_failures_become_value_errors(self, tmp_path):
        with pytest.raises(ValueError, match="cannot load fault plan"):
            load_fault_plan(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="cannot load fault plan"):
            load_fault_plan(bad)


class TestFaultInjector:
    def test_error_faults_raise_before_the_function_runs(self):
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="error", calls={"first": 1}),))
        injector = FaultInjector(plan)
        ran = []
        with pytest.raises(InjectedFaultError):
            injector.call("k", ran.append, "a")
        assert ran == []  # the call boundary held: no partial execution
        assert injector.call("k", lambda value: value, "b") == "b"
        assert injector.injected == {"error": 1}

    def test_delay_faults_sleep_then_run(self):
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="delay", delay_ms=250.0),))
        naps = []
        injector = FaultInjector(plan, sleep=naps.append)
        assert injector.call("k", lambda: "done") == "done"
        assert naps == [0.25]
        assert injector.injected == {"delay": 1}

    def test_hang_faults_sleep_for_the_plan_bound(self):
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="hang"),), hang_ms=1000.0)
        naps = []
        injector = FaultInjector(plan, sleep=naps.append)
        injector.call("k", lambda: None)
        assert naps == [1.0]

    def test_call_counters_are_per_key(self):
        plan = FaultPlan(specs=(FaultSpec(key="*", kind="error", calls=[1]),))
        injector = FaultInjector(plan)
        assert injector.call("a", lambda: "ok") == "ok"  # a#0
        assert injector.call("b", lambda: "ok") == "ok"  # b#0
        with pytest.raises(InjectedFaultError):
            injector.call("a", lambda: "ok")  # a#1


class TestChaosExecutor:
    def test_preserves_order_and_injects_by_task_index(self):
        plan = FaultPlan(specs=(FaultSpec(key="task-1", kind="delay", delay_ms=1.0),))
        naps = []
        injector = FaultInjector(plan, sleep=naps.append)
        executor = ChaosExecutor(SerialExecutor(), injector)
        assert executor.map(lambda x: x * 10, [1, 2, 3]) == [10, 20, 30]
        assert naps == [0.001]

    def test_errors_propagate_through_map(self):
        plan = FaultPlan(specs=(FaultSpec(key="task-0", kind="error"),))
        executor = ChaosExecutor(SerialExecutor(), FaultInjector(plan))
        with pytest.raises(InjectedFaultError):
            executor.map(lambda x: x, [1, 2])

    def test_custom_key_fn(self):
        plan = FaultPlan(specs=(FaultSpec(key="item-b", kind="error"),))
        executor = ChaosExecutor(
            SerialExecutor(),
            FaultInjector(plan),
            key_fn=lambda item, _index: f"item-{item}",
        )
        with pytest.raises(InjectedFaultError):
            executor.map(lambda x: x, ["a", "b"])

    def test_wraps_thread_executors(self):
        plan = FaultPlan(specs=(FaultSpec(key="task-2", kind="delay", delay_ms=1.0),))
        inner = ThreadPoolTaskExecutor(max_workers=2)
        try:
            executor = ChaosExecutor(inner, FaultInjector(plan, sleep=lambda _s: None))
            assert executor.map(lambda x: x + 1, list(range(8))) == list(range(1, 9))
        finally:
            inner.close()

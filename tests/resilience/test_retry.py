"""RetryPolicy backoff determinism and the circuit-breaker state machine."""

from __future__ import annotations

import pytest

from _clock import TickingClock

from repro.resilience import BreakerPolicy, RetryPolicy
from repro.resilience.retry import CircuitBreaker, seeded_fraction


class TestSeededFraction:
    def test_replays_from_the_seed(self):
        assert seeded_fraction(7, "shard-0", 1) == seeded_fraction(7, "shard-0", 1)

    def test_varies_with_every_part(self):
        values = {
            seeded_fraction(7, "shard-0", 1),
            seeded_fraction(8, "shard-0", 1),
            seeded_fraction(7, "shard-1", 1),
            seeded_fraction(7, "shard-0", 2),
        }
        assert len(values) == 4

    def test_stays_in_the_unit_interval(self):
        for index in range(100):
            assert 0.0 <= seeded_fraction(0, "key", index) < 1.0


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay_ms=10, multiplier=2, max_delay_ms=1000, jitter=0.0)
        assert [policy.backoff_ms(a) for a in range(4)] == [10, 20, 40, 80]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_delay_ms=10, multiplier=10, max_delay_ms=50, jitter=0.0)
        assert policy.backoff_ms(5) == 50

    def test_jitter_shrinks_but_never_inflates_the_delay(self):
        policy = RetryPolicy(base_delay_ms=100, multiplier=1, max_delay_ms=100, jitter=0.5)
        for attempt in range(20):
            delay = policy.backoff_ms(attempt, key="shard-3")
            assert 50.0 <= delay <= 100.0

    def test_schedule_is_deterministic_per_key(self):
        policy = RetryPolicy(seed=42)
        first = [policy.backoff_ms(a, key="shard-1") for a in range(3)]
        second = [policy.backoff_ms(a, key="shard-1") for a in range(3)]
        assert first == second
        assert first != [policy.backoff_ms(a, key="shard-2") for a in range(3)]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_ms": -1},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_attempt_is_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(-1)


class TestCircuitBreaker:
    def make(self, threshold=2, cooldown=10.0):
        clock = TickingClock()
        breaker = BreakerPolicy(failure_threshold=threshold, cooldown_seconds=cooldown).make(clock)
        return breaker, clock

    def test_trips_after_consecutive_failures(self):
        breaker, _clock = self.make(threshold=2)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _clock = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # a second concurrent call is rejected

    def test_probe_success_closes_the_breaker(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        breaker, clock = self.make(threshold=3, cooldown=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()  # probe failed: re-open even below the threshold
        assert not breaker.allow()
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()

    @pytest.mark.parametrize("kwargs", [{"failure_threshold": 0}, {"cooldown_seconds": -1}])
    def test_invalid_breaker_policies_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)

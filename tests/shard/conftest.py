"""Shared fixtures for the shard-layer tests.

One module-scoped repository + unsharded reference service keeps the
equivalence matrix (shard counts × routers × executors) affordable: the
reference results are computed once and every sharded configuration is
compared against them.
"""

from __future__ import annotations

import pytest

from repro.service import MatchingService
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

THRESHOLD = 0.5


@pytest.fixture(scope="package")
def shard_repository():
    profile = RepositoryProfile(
        target_node_count=700, min_tree_size=10, max_tree_size=55, seed=23, name="shard-repo"
    )
    return RepositoryGenerator(profile).generate()


@pytest.fixture(scope="package")
def reference_service(shard_repository):
    return MatchingService(shard_repository, element_threshold=THRESHOLD)


@pytest.fixture(scope="package")
def query_schemas():
    return [paper_personal_schema(), contact_personal_schema(), book_personal_schema()]


@pytest.fixture(scope="package")
def reference_results(reference_service, query_schemas):
    return [reference_service.match(schema) for schema in query_schemas]

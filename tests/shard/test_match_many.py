"""The batched query front-end: dedup, cache accounting, result identity."""

from __future__ import annotations

import pytest

from repro.service import MatchingService
from repro.shard import ShardedMatchingService, merged_repository
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

THRESHOLD = 0.5


@pytest.fixture
def service(shard_repository):
    return ShardedMatchingService.from_repository(
        shard_repository, 2, element_threshold=THRESHOLD
    )


class TestDeduplication:
    def test_duplicates_collapse_to_one_computation(self, service):
        batch = [
            paper_personal_schema(),
            contact_personal_schema(),
            paper_personal_schema(),  # structurally identical to [0]
            book_personal_schema(),
            paper_personal_schema(),
        ]
        results = service.match_many(batch)
        assert len(results) == 5
        assert results[0] is results[2] and results[0] is results[4]
        assert service.counters.get("queries") == 5
        assert service.counters.get("duplicate_queries") == 2
        assert service.counters.get("query_cache_misses") == 3
        # One fan-out per unique query, one task per (query, shard).
        assert service.counters.get("shard_queries") == 3 * service.shard_count

    def test_results_align_with_input_positions(self, service, reference_results, query_schemas):
        batch = [query_schemas[2], query_schemas[0], query_schemas[2]]
        results = service.match_many(batch)
        assert results[0].ranking_key() == reference_results[2].ranking_key()
        assert results[1].ranking_key() == reference_results[0].ranking_key()
        assert results[2] is results[0]

    def test_empty_batch_is_empty(self, service):
        assert service.match_many([]) == []
        assert service.counters.get("queries") == 0


class TestFrontEndCache:
    def test_repeat_batch_is_served_from_cache(self, service):
        schema = paper_personal_schema()
        first = service.match_many([schema])[0]
        second = service.match_many([schema])[0]
        assert second is first
        assert service.counters.get("query_cache_hits") == 1
        assert service.counters.get("shard_queries") == service.shard_count  # only the miss fanned out

    def test_delta_and_top_k_are_part_of_the_key(self, service):
        schema = paper_personal_schema()
        service.match(schema)
        service.match(schema, delta=0.5)
        service.match(schema, top_k=2)
        assert service.counters.get("query_cache_misses") == 3
        assert service.counters.get("query_cache_hits") == 0

    def test_cache_capacity_is_bounded(self, shard_repository):
        service = ShardedMatchingService.from_repository(
            shard_repository, 2, element_threshold=THRESHOLD, query_cache_size=1
        )
        service.match(paper_personal_schema())
        service.match(contact_personal_schema())
        assert service.query_cache_len == 1
        service.match(paper_personal_schema())  # evicted: a fresh fan-out
        assert service.counters.get("query_cache_hits") == 0
        assert service.counters.get("query_cache_misses") == 3

    def test_cache_can_be_disabled(self, shard_repository, reference_results):
        service = ShardedMatchingService.from_repository(
            shard_repository, 2, element_threshold=THRESHOLD, query_cache_size=0
        )
        first = service.match(paper_personal_schema())
        second = service.match(paper_personal_schema())
        assert service.query_cache_len == 0
        assert service.counters.get("query_cache_hits") == 0
        assert service.counters.get("query_cache_misses") == 0
        assert first.ranking_key() == second.ranking_key() == reference_results[0].ranking_key()

    def test_mutation_invalidates_cached_results(self, service, shard_repository):
        from repro.schema.builder import TreeBuilder

        schema = paper_personal_schema()
        service.match(schema)
        builder = TreeBuilder("added")
        root = builder.root("person")
        builder.child(root, "name")
        service.add_tree(builder.build())
        rebuilt_reference = MatchingService(
            merged_repository(service), element_threshold=THRESHOLD
        )
        result = service.match(schema)
        assert service.counters.get("query_cache_hits") == 0
        assert result.ranking_key() == rebuilt_reference.match(schema).ranking_key()


class TestBatchedIdentity:
    def test_batch_results_identical_to_unsharded(
        self, service, query_schemas, reference_results
    ):
        results = service.match_many(query_schemas)
        for result, reference in zip(results, reference_results):
            assert result.ranking_key() == reference.ranking_key()

    def test_batch_with_top_k_identical_to_unsharded(
        self, service, reference_service, query_schemas
    ):
        results = service.match_many(query_schemas, top_k=2)
        for schema, result in zip(query_schemas, results):
            assert (
                result.ranking_key()
                == reference_service.match(schema, top_k=2).ranking_key()
            )

"""Shard-set manifests: round-trips, validation, rebalancing.

A manifest ties per-shard snapshots into one versioned unit; a wrong or
stale manifest would not crash — it would merge rankings in the wrong
coordinate space.  Every malformation therefore fails loudly with a typed
error, and a loaded set must answer queries bit-identically to the service
that wrote it.
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro.errors import ReproError, ShardError, ShardManifestError
from repro.shard import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    ClusterAffinityRouter,
    RoundRobinRouter,
    ShardedMatchingService,
    load_manifest,
    load_shard_set,
    merged_repository,
    rebalance_shard_set,
    write_shard_set,
)
from repro.workload.personal import paper_personal_schema

THRESHOLD = 0.5


@pytest.fixture
def shard_set(tmp_path, shard_repository):
    service = ShardedMatchingService.from_repository(
        shard_repository, 3, router=RoundRobinRouter(), element_threshold=THRESHOLD
    )
    write_shard_set(service, tmp_path)
    return tmp_path / "manifest.json"


class TestRoundTrip:
    def test_loaded_set_answers_identically(self, shard_set, reference_results, query_schemas):
        service = load_shard_set(shard_set)
        assert service.shard_count == 3
        assert isinstance(service.router, RoundRobinRouter)
        for schema, reference in zip(query_schemas, reference_results):
            assert service.match(schema).ranking_key() == reference.ranking_key()

    def test_router_parameters_survive_the_round_trip(self, tmp_path, shard_repository):
        service = ShardedMatchingService.from_repository(
            shard_repository,
            2,
            router=ClusterAffinityRouter(max_fragment_size=11),
            element_threshold=THRESHOLD,
        )
        write_shard_set(service, tmp_path)
        loaded = load_shard_set(tmp_path / "manifest.json")
        assert isinstance(loaded.router, ClusterAffinityRouter)
        assert loaded.router.max_fragment_size == 11

    def test_shard_set_is_relocatable(self, shard_set, tmp_path, reference_results):
        moved = tmp_path.parent / f"{tmp_path.name}-moved"
        shutil.copytree(tmp_path, moved)
        service = load_shard_set(moved / "manifest.json")
        result = service.match(paper_personal_schema())
        assert result.ranking_key() == reference_results[0].ranking_key()

    def test_cache_size_override_applies_to_front_end_and_shards(self, shard_set):
        service = load_shard_set(shard_set, query_cache_size=0)
        assert service.query_cache_size == 0
        assert all(shard.query_cache_size == 0 for shard in service.shards)

    def test_manifest_document_shape(self, shard_set, shard_repository):
        manifest = load_manifest(shard_set)
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["shard_count"] == 3
        assert len(manifest["assignment"]) == shard_repository.tree_count
        assert sum(entry["nodes"] for entry in manifest["shards"]) == shard_repository.node_count


class TestMalformedManifests:
    def _write(self, tmp_path, payload) -> str:
        path = tmp_path / "manifest.json"
        path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
        return str(path)

    def test_missing_file_is_a_typed_error(self, tmp_path):
        with pytest.raises(ShardManifestError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")

    def test_invalid_json_is_a_typed_error(self, tmp_path):
        with pytest.raises(ShardManifestError, match="not valid JSON"):
            load_manifest(self._write(tmp_path, "{not json"))

    def test_non_object_document_is_a_typed_error(self, tmp_path):
        with pytest.raises(ShardManifestError, match="not a shard manifest"):
            load_manifest(self._write(tmp_path, [1, 2, 3]))

    def test_wrong_format_is_a_typed_error(self, tmp_path):
        with pytest.raises(ShardManifestError, match="not a shard manifest"):
            load_manifest(self._write(tmp_path, {"format": "something-else"}))

    def test_wrong_version_is_a_typed_error(self, tmp_path):
        with pytest.raises(ShardManifestError, match="version"):
            load_manifest(
                self._write(tmp_path, {"format": MANIFEST_FORMAT, "version": 999})
            )

    def test_shard_count_mismatch_is_a_typed_error(self, tmp_path):
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "shard_count": 2,
            "assignment": [0],
            "shards": [{"path": "a.json", "trees": 1, "nodes": 3}],
        }
        with pytest.raises(ShardManifestError, match="shard_count"):
            load_manifest(self._write(tmp_path, payload))

    def test_assignment_to_unknown_shard_is_a_typed_error(self, tmp_path):
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "shard_count": 1,
            "assignment": [0, 7],
            "shards": [{"path": "a.json", "trees": 2, "nodes": 6}],
        }
        with pytest.raises(ShardManifestError, match="unknown shard"):
            load_manifest(self._write(tmp_path, payload))

    def test_tree_count_disagreement_is_a_typed_error(self, tmp_path):
        payload = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "shard_count": 1,
            "assignment": [0, 0],
            "shards": [{"path": "a.json", "trees": 5, "nodes": 6}],
        }
        with pytest.raises(ShardManifestError, match="declares 5 trees"):
            load_manifest(self._write(tmp_path, payload))

    def test_tampered_manifest_counts_fail_on_load(self, shard_set):
        payload = json.loads(shard_set.read_text())
        payload["shards"][0]["nodes"] = payload["shards"][0]["nodes"] + 1
        shard_set.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="manifest declares"):
            load_shard_set(shard_set)

    def test_swapped_snapshot_paths_fail_the_digest_check(self, shard_set):
        # Swap the snapshot paths of two shards holding the *same* number of
        # trees (round-robin guarantees such a pair exists): every count
        # check still passes, so only the content digest can catch the swap
        # before it silently mis-merges rankings.
        payload = json.loads(shard_set.read_text())
        entries = payload["shards"]
        pair = next(
            (i, j)
            for i in range(len(entries))
            for j in range(i + 1, len(entries))
            if entries[i]["trees"] == entries[j]["trees"]
        )
        i, j = pair
        entries[i]["path"], entries[j]["path"] = entries[j]["path"], entries[i]["path"]
        entries[i]["nodes"], entries[j]["nodes"] = entries[j]["nodes"], entries[i]["nodes"]
        shard_set.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="digest"):
            load_shard_set(shard_set)

    def test_missing_snapshot_file_is_a_typed_error(self, shard_set):
        (shard_set.parent / "shard-1.snapshot.json").unlink()
        with pytest.raises(ReproError, match="cannot read snapshot"):
            load_shard_set(shard_set)

    def test_unknown_router_policy_is_a_typed_error(self, shard_set):
        payload = json.loads(shard_set.read_text())
        payload["router"] = {"policy": "hash-ring", "params": {}}
        shard_set.write_text(json.dumps(payload))
        with pytest.raises(ShardError, match="unknown shard router"):
            load_shard_set(shard_set)


class TestRebalance:
    def test_rebalance_preserves_results_and_bumps_version(
        self, shard_set, reference_results, query_schemas
    ):
        before = load_manifest(shard_set)
        manifest = rebalance_shard_set(shard_set, shard_count=2)
        assert manifest["shard_count"] == 2
        assert manifest["global_version"] == before["global_version"] + 1
        service = load_shard_set(shard_set)
        assert service.shard_count == 2
        for schema, reference in zip(query_schemas, reference_results):
            assert service.match(schema).ranking_key() == reference.ranking_key()

    def test_rebalance_with_new_router_records_it(self, shard_set):
        rebalance_shard_set(shard_set, router=ClusterAffinityRouter(max_fragment_size=9))
        manifest = load_manifest(shard_set)
        assert manifest["router"] == {
            "policy": "cluster-affinity",
            "params": {"max_fragment_size": 9},
        }

    def test_rebalance_to_a_new_directory_keeps_the_original(
        self, shard_set, tmp_path, reference_results
    ):
        target = tmp_path.parent / f"{tmp_path.name}-rebalanced"
        rebalance_shard_set(shard_set, shard_count=4, out_directory=target)
        original = load_shard_set(shard_set)
        rebalanced = load_shard_set(target / "manifest.json")
        assert original.shard_count == 3
        assert rebalanced.shard_count == 4
        schema = paper_personal_schema()
        assert (
            original.match(schema).ranking_key()
            == rebalanced.match(schema).ranking_key()
            == reference_results[0].ranking_key()
        )

    def test_merged_repository_reassembles_the_original(self, shard_set, shard_repository):
        service = load_shard_set(shard_set)
        merged = merged_repository(service)
        assert merged.tree_count == shard_repository.tree_count
        assert merged.node_count == shard_repository.node_count
        for tree_id in range(merged.tree_count):
            assert merged.tree(tree_id).name == shard_repository.tree(tree_id).name

"""Sharded vs. unsharded equivalence: the fan-out/merge must be invisible.

The headline guarantee of :class:`repro.shard.ShardedMatchingService` is that
query results are *bit-identical* to the unsharded service for any shard
count, any router and any executor.  These tests pin that identity through
every projection a result carries — ranked mappings (scores, signatures,
cluster ids), candidate tables, cluster reports, clustering — plus the
incremental-mutation and error paths of the shard layer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShardError, UnknownTreeError
from repro.schema.builder import TreeBuilder
from repro.service import MatchingService
from repro.shard import (
    ClusterAffinityRouter,
    RoundRobinRouter,
    ShardedMatchingService,
    SizeBalancedRouter,
    merged_repository,
    split_repository,
)
from repro.utils.executor import (
    ProcessPoolTaskExecutor,
    SerialExecutor,
    ThreadPoolTaskExecutor,
)
from repro.workload.personal import paper_personal_schema

THRESHOLD = 0.5


def make_sharded(repository, shard_count, router=None, executor=None, **kwargs):
    kwargs.setdefault("element_threshold", THRESHOLD)
    return ShardedMatchingService.from_repository(
        repository, shard_count, router=router, executor=executor, **kwargs
    )


def assert_results_identical(sharded_result, reference_result):
    """Every projection of the result must match, not just the ranking."""
    assert sharded_result.ranking_key() == reference_result.ranking_key()
    assert [m.cluster_id for m in sharded_result.mappings] == [
        m.cluster_id for m in reference_result.mappings
    ]
    assert [m.tree_id for m in sharded_result.mappings] == [
        m.tree_id for m in reference_result.mappings
    ]
    # Candidate tables: same elements, same (unsharded scan) order.
    assert sharded_result.candidates.personal_node_ids == reference_result.candidates.personal_node_ids
    for node_id in reference_result.candidates.personal_node_ids:
        assert [
            (e.ref.global_id, e.ref.tree_id, e.ref.node_id, e.similarity)
            for e in sharded_result.candidates.elements_for(node_id)
        ] == [
            (e.ref.global_id, e.ref.tree_id, e.ref.node_id, e.similarity)
            for e in reference_result.candidates.elements_for(node_id)
        ]
    # Cluster reports (ids, trees, sizes, search spaces) in cluster-id order.
    assert [
        (r.cluster_id, r.tree_id, r.member_count, r.mapping_element_count, r.search_space)
        for r in sharded_result.cluster_reports
    ] == [
        (r.cluster_id, r.tree_id, r.member_count, r.mapping_element_count, r.search_space)
        for r in reference_result.cluster_reports
    ]
    # Full clustering, translated back to merged coordinates.
    assert sharded_result.clustering is not None
    assert [
        (c.cluster_id, c.tree_id, sorted(c.member_global_ids()), c.centroid.global_id)
        for c in sharded_result.clustering.clusters
    ] == [
        (c.cluster_id, c.tree_id, sorted(c.member_global_ids()), c.centroid.global_id)
        for c in reference_result.clustering.clusters
    ]


class TestEquivalence:
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 4])
    def test_every_shard_count_matches_unsharded(
        self, shard_repository, shard_count, query_schemas, reference_results
    ):
        service = make_sharded(shard_repository, shard_count)
        for schema, reference in zip(query_schemas, reference_results):
            assert_results_identical(service.match(schema), reference)

    @pytest.mark.parametrize(
        "router", [RoundRobinRouter(), SizeBalancedRouter(), ClusterAffinityRouter()]
    )
    def test_every_router_matches_unsharded(
        self, shard_repository, router, query_schemas, reference_results
    ):
        service = make_sharded(shard_repository, 3, router=router)
        for schema, reference in zip(query_schemas, reference_results):
            assert_results_identical(service.match(schema), reference)

    @pytest.mark.parametrize("make_executor", [SerialExecutor, lambda: ThreadPoolTaskExecutor(4)])
    @pytest.mark.parametrize("shard_count", [1, 2, 3, 4])
    def test_executors_match_unsharded(
        self, shard_repository, shard_count, make_executor, query_schemas, reference_results
    ):
        with make_executor() as executor:
            service = make_sharded(shard_repository, shard_count, executor=executor)
            for schema, reference in zip(query_schemas, reference_results):
                assert_results_identical(service.match(schema), reference)

    @pytest.mark.parametrize("shard_count", [1, 2, 3, 4])
    def test_process_executor_matches_unsharded(
        self, shard_repository, shard_count, query_schemas, reference_results
    ):
        with ProcessPoolTaskExecutor(2) as executor:
            service = make_sharded(shard_repository, shard_count, executor=executor)
            assert_results_identical(service.match(query_schemas[0]), reference_results[0])
            assert (
                service.match(query_schemas[0], top_k=2).ranking_key()
                == reference_results[0].ranking_key()[:2]
            )

    @pytest.mark.parametrize("shard_count", [1, 3])
    @pytest.mark.parametrize("top_k", [1, 3, 10])
    def test_top_k_matches_unsharded(
        self, shard_repository, reference_service, shard_count, top_k
    ):
        schema = paper_personal_schema()
        reference = reference_service.match(schema, top_k=top_k)
        service = make_sharded(shard_repository, shard_count)
        result = service.match(schema, top_k=top_k)
        assert result.ranking_key() == reference.ranking_key()
        assert len(result.mappings) <= top_k

    def test_top_k_under_thread_executor_with_shared_pool(
        self, shard_repository, reference_service
    ):
        reference = reference_service.match(paper_personal_schema(), top_k=2)
        with ThreadPoolTaskExecutor(4) as executor:
            service = make_sharded(shard_repository, 4, executor=executor)
            for _ in range(3):  # repeated runs: the shared floor must never flake
                result = service.match(paper_personal_schema(), top_k=2)
                assert result.ranking_key() == reference.ranking_key()

    def test_delta_override_matches_unsharded(self, shard_repository, reference_service):
        schema = paper_personal_schema()
        reference = reference_service.match(schema, delta=0.5)
        service = make_sharded(shard_repository, 2)
        assert service.match(schema, delta=0.5).ranking_key() == reference.ranking_key()


class TestArbitraryAssignments:
    """Any valid assignment — not just router-produced ones — merges exactly."""

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_random_assignments_match_unsharded(
        self, shard_repository, reference_results, query_schemas, data
    ):
        tree_count = shard_repository.tree_count
        shard_count = data.draw(st.integers(min_value=1, max_value=4))
        assignment = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=shard_count - 1),
                min_size=tree_count,
                max_size=tree_count,
            ).filter(lambda a: len(set(a)) == shard_count)
        )
        shards = [
            MatchingService(repo, element_threshold=THRESHOLD)
            for repo in split_repository(shard_repository, assignment)
        ]
        service = ShardedMatchingService(shards, assignment)
        index = data.draw(st.integers(min_value=0, max_value=len(query_schemas) - 1))
        assert_results_identical(
            service.match(query_schemas[index]), reference_results[index]
        )


class TestMutations:
    def _fresh(self, shard_repository, shard_count=3):
        return make_sharded(shard_repository, shard_count)

    def _new_tree(self, name="added"):
        builder = TreeBuilder(name)
        root = builder.root("person")
        builder.child(root, "name")
        builder.child(root, "email")
        return builder.build()

    def test_add_tree_matches_rebuilt_unsharded(self, shard_repository):
        service = self._fresh(shard_repository)
        merged_id = service.add_tree(self._new_tree())
        assert merged_id == shard_repository.tree_count
        rebuilt = MatchingService(merged_repository(service), element_threshold=THRESHOLD)
        schema = paper_personal_schema()
        assert service.match(schema).ranking_key() == rebuilt.match(schema).ranking_key()
        assert service.counters.get("trees_added") == 1

    def test_remove_tree_matches_rebuilt_unsharded(self, shard_repository):
        service = self._fresh(shard_repository)
        service.remove_tree(1)
        rebuilt = MatchingService(merged_repository(service), element_threshold=THRESHOLD)
        schema = paper_personal_schema()
        assert service.match(schema).ranking_key() == rebuilt.match(schema).ranking_key()
        assert service.tree_count == shard_repository.tree_count - 1

    def test_remove_unknown_tree_raises_typed_error(self, shard_repository):
        service = self._fresh(shard_repository)
        with pytest.raises(UnknownTreeError):
            service.remove_tree(10**9)
        with pytest.raises(UnknownTreeError):
            service.remove_tree(-1)

    def test_remove_refuses_to_empty_a_shard(self, shard_repository):
        # With shard_count == tree_count every shard holds exactly one tree.
        service = make_sharded(shard_repository, shard_repository.tree_count)
        with pytest.raises(ShardError, match="rebalance"):
            service.remove_tree(0)

    def test_mutations_bump_global_version_and_clear_cache(self, shard_repository):
        service = self._fresh(shard_repository)
        service.match(paper_personal_schema())
        assert service.query_cache_len == 1
        version = service.global_version
        service.add_tree(self._new_tree())
        assert service.global_version == version + 1
        assert service.query_cache_len == 0


class TestConstructionErrors:
    def test_more_shards_than_trees_is_an_error(self, shard_repository):
        with pytest.raises(ShardError, match="at least one tree"):
            make_sharded(shard_repository, shard_repository.tree_count + 1)

    def test_zero_shards_is_an_error(self, shard_repository):
        with pytest.raises(ShardError):
            make_sharded(shard_repository, 0)

    def test_mismatched_shard_configuration_is_an_error(self, shard_repository):
        assignment = [0 if tree_id % 2 == 0 else 1 for tree_id in range(shard_repository.tree_count)]
        repos = split_repository(shard_repository, assignment)
        shards = [
            MatchingService(repos[0], element_threshold=0.5),
            MatchingService(repos[1], element_threshold=0.6),
        ]
        with pytest.raises(ShardError, match="matching configuration"):
            ShardedMatchingService(shards, assignment)

    def test_mismatched_fragment_size_is_an_error(self, shard_repository):
        assignment = [0 if tree_id % 2 == 0 else 1 for tree_id in range(shard_repository.tree_count)]
        repos = split_repository(shard_repository, assignment)
        shards = [
            MatchingService(repos[0], element_threshold=0.5, partition_max_fragment_size=20),
            MatchingService(repos[1], element_threshold=0.5, partition_max_fragment_size=5),
        ]
        with pytest.raises(ShardError, match="matching configuration"):
            ShardedMatchingService(shards, assignment)

    def test_mismatched_matcher_is_an_error(self, shard_repository):
        from repro.matchers.name import FuzzyNameMatcher

        assignment = [0 if tree_id % 2 == 0 else 1 for tree_id in range(shard_repository.tree_count)]
        repos = split_repository(shard_repository, assignment)
        shards = [
            MatchingService(repos[0], element_threshold=0.5),
            MatchingService(
                repos[1], element_threshold=0.5, matcher=FuzzyNameMatcher(case_sensitive=True)
            ),
        ]
        with pytest.raises(ShardError, match="matching configuration"):
            ShardedMatchingService(shards, assignment)

    def test_non_partition_clusterer_is_an_error(self, shard_repository):
        assignment = [0] * shard_repository.tree_count
        (repo,) = split_repository(shard_repository, assignment)
        shard = MatchingService(repo, variant="medium", element_threshold=0.5)
        with pytest.raises(ShardError, match="partition"):
            ShardedMatchingService([shard], assignment)

    def test_assignment_shard_count_mismatch_is_an_error(self, shard_repository):
        assignment = [0] * shard_repository.tree_count
        (repo,) = split_repository(shard_repository, assignment)
        shard = MatchingService(repo, element_threshold=0.5)
        with pytest.raises(ShardError):
            ShardedMatchingService([shard], [1] * shard_repository.tree_count)

    def test_invalid_top_k_is_a_configuration_error(self, shard_repository):
        service = make_sharded(shard_repository, 2)
        with pytest.raises(ConfigurationError):
            service.match(paper_personal_schema(), top_k=0)


class TestViewAndStats:
    def test_repository_view_matches_merged_sizes(self, shard_repository):
        service = make_sharded(shard_repository, 3)
        view = service.repository
        assert view.tree_count == shard_repository.tree_count
        assert view.node_count == shard_repository.node_count
        assert view.summary() == shard_repository.summary()
        for tree_id in range(shard_repository.tree_count):
            assert view.tree(tree_id).name == shard_repository.tree(tree_id).name
            assert view.tree(tree_id).node_count == shard_repository.tree(tree_id).node_count

    def test_view_unknown_tree_raises_typed_error(self, shard_repository):
        service = make_sharded(shard_repository, 2)
        with pytest.raises(UnknownTreeError):
            service.repository.tree(shard_repository.tree_count)

    def test_stats_carry_per_shard_breakdown(self, shard_repository):
        service = make_sharded(shard_repository, 3)
        service.match(paper_personal_schema())
        stats = service.stats()
        assert stats["shards"] == 3
        assert stats["trees"] == shard_repository.tree_count
        assert stats["executor"] == "serial"
        assert stats["query_cache_capacity"] == 64
        assert len(stats["per_shard"]) == 3
        assert sum(entry["trees"] for entry in stats["per_shard"]) == shard_repository.tree_count
        for shard_id, entry in enumerate(stats["per_shard"]):
            assert entry["shard"] == shard_id
            assert entry["variant"] == "partition"
            assert "repository_version" in entry

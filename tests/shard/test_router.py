"""Router policies: determinism, balance, registry round-trips."""

from __future__ import annotations

import pytest

from repro.errors import ShardError
from repro.schema.builder import TreeBuilder
from repro.shard import (
    ClusterAffinityRouter,
    RoundRobinRouter,
    SizeBalancedRouter,
    available_router_names,
    make_router,
)
from repro.shard.router import check_shard_count


def _tree(name, leaf_count):
    builder = TreeBuilder(name)
    root = builder.root("root")
    for index in range(leaf_count):
        builder.child(root, f"leaf{index}")
    return builder.build()


class TestRoundRobin:
    def test_assignment_is_modular(self, shard_repository):
        assignment = RoundRobinRouter().assign(shard_repository, 3)
        assert assignment == [tree_id % 3 for tree_id in range(shard_repository.tree_count)]

    def test_place_follows_the_next_tree_id(self):
        router = RoundRobinRouter()
        assert router.place(_tree("t", 2), [0, 0, 0], next_tree_id=7) == 1


class TestSizeBalanced:
    def test_every_shard_gets_at_least_one_tree(self, shard_repository):
        for shard_count in range(1, 5):
            assignment = SizeBalancedRouter().assign(shard_repository, shard_count)
            assert set(assignment) == set(range(shard_count))

    def test_node_loads_are_balanced_within_the_largest_tree(self, shard_repository):
        assignment = SizeBalancedRouter().assign(shard_repository, 3)
        loads = [0, 0, 0]
        largest = 0
        for tree in shard_repository.trees():
            loads[assignment[tree.tree_id]] += tree.node_count
            largest = max(largest, tree.node_count)
        assert max(loads) - min(loads) <= largest

    def test_assignment_is_deterministic(self, shard_repository):
        first = SizeBalancedRouter().assign(shard_repository, 4)
        second = SizeBalancedRouter().assign(shard_repository, 4)
        assert first == second

    def test_place_picks_the_lightest_shard(self):
        router = SizeBalancedRouter()
        assert router.place(_tree("t", 3), [10, 4, 9], next_tree_id=0) == 1
        assert router.place(_tree("t", 3), [4, 4, 9], next_tree_id=0) == 0  # tie: lowest id


class TestClusterAffinity:
    def test_weight_counts_partition_fragments(self):
        router = ClusterAffinityRouter(max_fragment_size=3)
        assert router.tree_weight(_tree("small", 2)) == 1  # 3 nodes, one fragment
        assert router.tree_weight(_tree("large", 11)) > 1

    def test_invalid_fragment_size_is_a_typed_error(self):
        with pytest.raises(ShardError):
            ClusterAffinityRouter(max_fragment_size=0)

    def test_config_round_trips_through_the_registry(self):
        router = make_router("cluster-affinity", {"max_fragment_size": 7})
        assert isinstance(router, ClusterAffinityRouter)
        assert router.config() == {"max_fragment_size": 7}


class TestRegistry:
    def test_all_policies_are_listed(self):
        assert available_router_names() == ["cluster-affinity", "round-robin", "size-balanced"]

    def test_unknown_name_is_a_typed_error(self):
        with pytest.raises(ShardError, match="unknown shard router"):
            make_router("consistent-hashing")

    def test_bad_parameters_are_a_typed_error(self):
        with pytest.raises(ShardError, match="invalid parameters"):
            make_router("round-robin", {"bogus": 1})


class TestShardCountValidation:
    def test_bounds(self):
        check_shard_count(1, 1)
        check_shard_count(4, 9)
        with pytest.raises(ShardError):
            check_shard_count(0, 5)
        with pytest.raises(ShardError, match="at least one tree"):
            check_shard_count(6, 5)

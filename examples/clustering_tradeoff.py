"""The efficiency / effectiveness trade-off of clustered schema matching.

Sweeps the clustering variants (small / medium / large / tree) over one
matching problem and prints, for each, the search-space reduction it buys and
the fraction of mappings it preserves at several thresholds — the trade-off at
the heart of the paper (Table 1 + Figure 5), plus the fragment-based baseline
for comparison.

Run with:  python examples/clustering_tradeoff.py
"""

from __future__ import annotations

from repro import Bellflower, clustering_variant
from repro.system.metrics import preservation_curve
from repro.utils.tables import AsciiTable, format_percent
from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema

VARIANTS = ("small", "medium", "large", "fragments", "tree")
THRESHOLDS = (0.75, 0.85, 0.95)


def main() -> None:
    repository = RepositoryGenerator(
        RepositoryProfile(target_node_count=4000, name="tradeoff-repository")
    ).generate()
    personal = paper_personal_schema()
    print(f"repository: {repository.tree_count} trees, {repository.node_count} nodes")

    # Run element matching once and reuse the candidates for every variant.
    candidates = Bellflower(repository, element_threshold=0.45).element_matching(personal)
    print(f"mapping elements: {candidates.total()}\n")

    results = {}
    for name in VARIANTS:
        system = Bellflower(
            repository,
            clusterer=clustering_variant(name).make_clusterer(),
            element_threshold=0.45,
            delta=0.75,
            variant_name=name,
        )
        results[name] = system.match(personal, candidates=candidates)

    reference = results["tree"]
    table = AsciiTable(
        ["variant", "useful clusters", "search space", "% of tree", "partial mappings", "mappings"]
        + [f"preserved @{threshold}" for threshold in THRESHOLDS],
        title="Clustering variants: efficiency vs effectiveness",
    )
    for name in VARIANTS:
        result = results[name]
        curve = preservation_curve(reference.mappings, result.mappings, THRESHOLDS)
        table.add_row(
            [
                name,
                result.useful_cluster_count,
                result.search_space,
                format_percent(result.search_space / reference.search_space if reference.search_space else 0.0),
                result.partial_mappings,
                result.mapping_count,
            ]
            + [format_percent(point.fraction) for point in curve]
        )
    print(table.render())
    print(
        "\nReading: smaller clusters cut the search space harder but lose more of the"
        " low-ranked mappings; the highly ranked mappings survive in every variant."
    )


if __name__ == "__main__":
    main()

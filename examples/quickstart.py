"""Quickstart: match a personal schema against a synthetic repository.

Builds a ~2 500-element synthetic schema repository, defines the paper's
*name / address / email* personal schema, runs Bellflower once without
clustering and once with the "medium" clustering variant, and prints the top
mappings plus the efficiency comparison between the two runs.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Bellflower, clustering_variant
from repro.system.metrics import partial_mapping_reduction, search_space_reduction
from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema


def main() -> None:
    # 1. A repository standing in for "the schemas of the Internet".
    profile = RepositoryProfile(target_node_count=2500, name="quickstart-repository")
    repository = RepositoryGenerator(profile).generate()
    print(f"repository: {repository.tree_count} trees, {repository.node_count} nodes")

    # 2. The user's personal schema (three nodes: name, address, email).
    personal = paper_personal_schema()
    print(f"personal schema: {personal.names()}")

    # 3. Non-clustered matching (every repository tree is searched exhaustively).
    baseline = Bellflower(repository, element_threshold=0.45, delta=0.75, variant_name="tree")
    baseline_result = baseline.match(personal)

    # 4. Clustered matching with the paper's "medium" k-means variant.
    clustered_system = Bellflower(
        repository,
        clusterer=clustering_variant("medium").make_clusterer(),
        element_threshold=0.45,
        delta=0.75,
        variant_name="medium",
    )
    clustered_result = clustered_system.match(personal, candidates=baseline_result.candidates)

    # 5. Compare the two runs.
    print("\ntop mappings (clustered run):")
    for mapping in clustered_result.mappings[:5]:
        print("  " + mapping.describe(personal, repository))

    print("\nefficiency comparison (clustered vs non-clustered):")
    print(f"  search space:      {clustered_result.search_space:>8} vs {baseline_result.search_space}")
    print(f"  partial mappings:  {clustered_result.partial_mappings:>8} vs {baseline_result.partial_mappings}")
    print(f"  mappings found:    {clustered_result.mapping_count:>8} vs {baseline_result.mapping_count}")
    print(f"  search-space kept: {search_space_reduction(clustered_result, baseline_result):.1%}")
    print(f"  partial-mapping reduction factor: {partial_mapping_reduction(clustered_result, baseline_result):.1f}x")


if __name__ == "__main__":
    main()

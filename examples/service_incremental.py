"""Service walkthrough: snapshot → load → incremental add → rebuild-identical queries.

Builds a :class:`~repro.service.MatchingService` over a synthetic repository,
persists it as a one-file snapshot, loads a second service from that snapshot,
registers a new schema tree on the *live* service (patching only the affected
index postings, oracle rows and partition fragments), and then verifies the
headline guarantee: the incrementally updated service answers queries
**bit-identically** to a service rebuilt from scratch over the same final
forest — while loading and updating in a fraction of the time.

Run with:  PYTHONPATH=src python examples/service_incremental.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.schema.builder import TreeBuilder
from repro.schema.serialization import tree_from_dict, tree_to_dict
from repro.schema.repository import SchemaRepository
from repro.service import MatchingService, load_snapshot, write_snapshot
from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema


def crew_manifest_tree():
    """A tree that does not exist in the generated repository yet."""
    builder = TreeBuilder("crew-manifest")
    root = builder.root("crewManifest")
    member = builder.child(root, "member")
    builder.child(member, "name", datatype="string")
    builder.child(member, "address", datatype="string")
    builder.child(member, "email", datatype="string")
    builder.child(root, "vessel", datatype="string")
    return builder.build()


def main() -> None:
    # 1. A repository and a service with eagerly built derived state.
    profile = RepositoryProfile(target_node_count=2500, name="service-example")
    repository = RepositoryGenerator(profile).generate()
    service = MatchingService(repository, element_threshold=0.45, delta=0.7)
    print(f"repository: {repository.tree_count} trees, {repository.node_count} nodes")

    # 2. Snapshot it: one JSON file holding the forest + every derived table.
    snapshot_path = Path(tempfile.mkdtemp(prefix="bellflower_")) / "repository.snapshot.json"
    write_snapshot(service, snapshot_path)
    print(f"snapshot: {snapshot_path.stat().st_size} bytes at {snapshot_path}")

    # 3. A "new process" starts from the snapshot instead of recomputing.
    started = time.perf_counter()
    served = load_snapshot(snapshot_path)
    print(f"loaded service in {time.perf_counter() - started:.3f}s "
          f"({served.oracle.built_oracle_count} oracles, "
          f"{served.partition.built_tree_count} partitioned trees)")

    # 4. Query, then register a new tree on the LIVE service.
    personal = paper_personal_schema()
    before = served.match(personal)
    tree_id = served.add_tree(crew_manifest_tree())
    after = served.match(personal)
    print(f"added tree {tree_id}; mappings {len(before.mappings)} -> {len(after.mappings)}")

    # 5. The guarantee: identical to a from-scratch rebuild of the final forest.
    rebuilt_repository = SchemaRepository(name="rebuilt")
    for tree in served.repository.trees():
        rebuilt_repository.add_tree(tree_from_dict(tree_to_dict(tree)))
    rebuilt = MatchingService(rebuilt_repository, element_threshold=0.45, delta=0.7)
    rebuilt_result = rebuilt.match(personal)
    assert after.ranking_key() == rebuilt_result.ranking_key(), "incremental != rebuild!"
    print("incremental update is bit-identical to a full rebuild ✓")

    top = after.mappings[0]
    tree = served.repository.tree(top.tree_id)
    print(f"best mapping now: Δ={top.score:.3f} in {tree.name!r}")
    print(f"service counters: {service_counters(served)}")


def service_counters(service: MatchingService) -> dict:
    return {
        name: value
        for name, value in service.counters.as_dict().items()
        if name in ("queries", "query_cache_hits", "query_cache_misses", "trees_added")
    }


if __name__ == "__main__":
    main()

"""Tuning the reclustering step of the adapted k-means.

Reproduces the Figure 4 analysis interactively: clusters one matching problem
with no reclustering, join reclustering at several distance thresholds, and
join & remove, then prints the cluster-size histograms and the number of
useful clusters each configuration yields.  This is the knob that turns the
"small" / "medium" / "large" variants of the paper into one another.

Run with:  python examples/reclustering_tuning.py
"""

from __future__ import annotations

from repro import Bellflower
from repro.clustering import (
    JoinReclustering,
    KMeansClusterer,
    MEminInitializer,
    NoReclustering,
    RelaxedConvergence,
)
from repro.clustering.reclustering import join_and_remove
from repro.utils.histogram import Histogram, exponential_buckets
from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema

CONFIGURATIONS = [
    ("no reclustering", NoReclustering()),
    ("join, threshold 2", JoinReclustering(distance_threshold=2.0)),
    ("join, threshold 3", JoinReclustering(distance_threshold=3.0)),
    ("join, threshold 4", JoinReclustering(distance_threshold=4.0)),
    ("join & remove (3, min 2)", join_and_remove(distance_threshold=3.0, min_size=2)),
]


def main() -> None:
    repository = RepositoryGenerator(
        RepositoryProfile(target_node_count=4000, name="reclustering-repository")
    ).generate()
    personal = paper_personal_schema()
    candidates = Bellflower(repository, element_threshold=0.45).element_matching(personal)
    print(
        f"repository: {repository.tree_count} trees, {repository.node_count} nodes; "
        f"{candidates.total()} mapping elements\n"
    )

    for label, strategy in CONFIGURATIONS:
        clusterer = KMeansClusterer(
            initializer=MEminInitializer(),
            reclustering=strategy,
            convergence=RelaxedConvergence(),
        )
        clustering = clusterer.cluster(candidates, repository)
        useful = clustering.clusters.useful_clusters(candidates)
        histogram = Histogram(exponential_buckets(255))
        histogram.add_all(clustering.clusters.mapping_element_sizes(candidates))
        print(
            f"--- {label}: {clustering.clusters.cluster_count} clusters "
            f"({len(useful)} useful), {clustering.iterations} iterations, "
            f"{clustering.elapsed_seconds:.2f}s"
        )
        print(histogram.render(width=30))
        print()


if __name__ == "__main__":
    main()

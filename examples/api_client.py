#!/usr/bin/env python
"""A minimal socket client for the unified query API (``cli serve --port``).

Demonstrates the v1 JSONL wire protocol end to end against a live server:

1. connect and read the ``{"v": 1, "kind": "ready", ...}`` greeting;
2. issue a **batch** envelope (three queries, one a duplicate — the server's
   ``match_many`` deduplicates it by fingerprint);
3. issue a single **match** with ``explain: true`` and print the per-cluster
   search statistics;
4. issue a **stats** request and show the uniform backend card.

Run a server first (any backend works — snapshot or shard set)::

    PYTHONPATH=src python -m repro.cli generate --nodes 2500 --out repo.json
    PYTHONPATH=src python -m repro.cli snapshot --repository repo.json --out repo.snapshot.json
    PYTHONPATH=src python -m repro.cli serve --snapshot repo.snapshot.json --port 7407 &

then::

    PYTHONPATH=src python examples/api_client.py --port 7407

The client is deliberately dependency-free (plain ``socket``): the wire
format is just JSON lines, so any language can speak it.  The envelope
classes from :mod:`repro.api` are used only to *build* payloads — showing
both styles: dataclasses where the library is available, raw dicts where it
is not.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import BatchRequest, MatchOptions, MatchRequest, StatsRequest


class JsonLineClient:
    """One JSONL connection: send a dict, receive a dict, in lockstep."""

    def __init__(self, host: str, port: int) -> None:
        self._socket = socket.create_connection((host, port), timeout=30)
        self._reader = self._socket.makefile("r", encoding="utf-8")
        self._writer = self._socket.makefile("w", encoding="utf-8")

    def read(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def call(self, payload: dict) -> dict:
        self._writer.write(json.dumps(payload) + "\n")
        self._writer.flush()
        return self.read()

    def close(self) -> None:
        self._socket.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True, help="port of a running 'cli serve --port'")
    args = parser.parse_args()

    client = JsonLineClient(args.host, args.port)
    ready = client.read()
    print(
        f"connected: backend={ready['backend']} protocol=v{ready['protocol_version']} "
        f"({ready['trees']} trees, {ready['nodes']} nodes)"
    )

    # -- batch query (note the duplicate: the server computes it once) -------
    batch = BatchRequest(
        requests=(
            MatchRequest(schema={"person": ["name", "email"]}, options=MatchOptions(top_k=3)),
            MatchRequest(schema={"book": ["title", "author"]}, options=MatchOptions(top_k=3)),
            MatchRequest(schema={"person": ["name", "email"]}, options=MatchOptions(top_k=3)),
        )
    )
    response = client.call(batch.to_wire())
    print(f"\nbatch: {response['queries']} queries answered")
    for index, result in enumerate(response["results"]):
        best = result["mappings"][0] if result["mappings"] else None
        summary = f"best Δ={best['score']:.3f} in {best['tree']}" if best else "no mappings"
        print(f"  query {index}: {result['mapping_count']} mappings, {summary}")

    # -- single query with an explain report (raw-dict style) ----------------
    response = client.call(
        {
            "v": 1,
            "kind": "match",
            "schema": {"person": ["name", "address", "email"]},
            "options": {"top_k": 3, "explain": True},
        }
    )
    explain = response["explain"]
    print(
        f"\nexplain: {explain['useful_clusters']} useful clusters, "
        f"search space {explain['search_space']}, "
        f"{explain['partial_mappings']} partial mappings"
    )
    for mapping in response["mappings"]:
        print(f"  Δ={mapping['score']:.3f} {mapping['tree']}")
        for entry in mapping["assignment"]:
            print(f"    {entry['personal']} -> {entry['repository']} (sim {entry['similarity']:.2f})")

    # -- stats + describe ----------------------------------------------------
    stats = client.call(StatsRequest().to_wire())["stats"]
    card = client.call(StatsRequest(describe=True).to_wire())["stats"]
    print(
        f"\nstats: queries={stats.get('queries', 0)} "
        f"duplicates={stats.get('duplicate_queries', 0)} "
        f"cache_hits={stats.get('query_cache_hits', 0)}"
    )
    print(f"describe: capabilities={', '.join(card['capabilities'])}")

    client.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Scaling behaviour: clustered vs non-clustered matching as the repository grows.

The paper's complexity argument (Sec. 2.3): the non-clustered search space
grows polynomially with the repository while the clustered one grows roughly
linearly, because the number of clusters grows with the repository but the
cluster size stays bounded.  This example matches the same personal schema
against repositories of 2 500 to 10 200 elements (the paper's experimental
range) and prints how the search space, the partial-mapping counts and the
stage times evolve for the "medium" clustering variant and for the
non-clustered baseline.

Run with:  python examples/repository_scaling.py
"""

from __future__ import annotations

from repro import Bellflower, clustering_variant
from repro.utils.tables import AsciiTable, format_percent
from repro.workload import RepositoryGenerator, RepositoryProfile, paper_personal_schema

REPOSITORY_SIZES = (2500, 5000, 7500, 10200)


def main() -> None:
    personal = paper_personal_schema()
    table = AsciiTable(
        [
            "repository nodes",
            "mapping elements",
            "space (tree)",
            "space (medium)",
            "space kept",
            "partials (tree)",
            "partials (medium)",
            "time tree (s)",
            "time medium (s)",
        ],
        title="Scaling clustered vs non-clustered matching with repository size",
    )

    for size in REPOSITORY_SIZES:
        profile = RepositoryProfile(target_node_count=size, name=f"scaling-{size}")
        repository = RepositoryGenerator(profile).generate()

        baseline = Bellflower(repository, element_threshold=0.45, delta=0.75, variant_name="tree")
        baseline_result = baseline.match(personal)

        clustered = Bellflower(
            repository,
            clusterer=clustering_variant("medium").make_clusterer(),
            element_threshold=0.45,
            delta=0.75,
            variant_name="medium",
        )
        clustered_result = clustered.match(personal, candidates=baseline_result.candidates)

        kept = (
            clustered_result.search_space / baseline_result.search_space
            if baseline_result.search_space
            else 0.0
        )
        table.add_row(
            [
                repository.node_count,
                baseline_result.candidates.total(),
                baseline_result.search_space,
                clustered_result.search_space,
                format_percent(kept),
                baseline_result.partial_mappings,
                clustered_result.partial_mappings,
                round(baseline_result.generation_seconds, 2),
                round(clustered_result.clustering_seconds + clustered_result.generation_seconds, 2),
            ]
        )
    print(table.render())


if __name__ == "__main__":
    main()

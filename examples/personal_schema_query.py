"""Personal-schema querying over real DTD/XSD documents.

The paper's motivating scenario (Sec. 1): a user who does not know the
structure of the XML data on the web writes a small *personal schema* — here
``book`` with ``title`` and ``author``, as in the paper's Fig. 1 — and the
matcher returns a ranked list of places in the schema repository where that
schema can be answered.  This example uses the bundled corpus of hand-written
DTD and XSD documents, so the full ingestion path (parsing real schema
documents) is exercised.

Run with:  python examples/personal_schema_query.py
"""

from __future__ import annotations

from repro import Bellflower
from repro.matchers import TokenNameMatcher, default_synonyms
from repro.workload import book_personal_schema, load_bundled_corpus


def main() -> None:
    # 1. Ingest the bundled DTD/XSD corpus into a schema repository.
    repository = load_bundled_corpus()
    print(f"corpus repository: {repository.tree_count} trees, {repository.node_count} nodes")
    for tree in repository.trees():
        print(f"  {tree.name}: {tree.node_count} nodes, root <{tree.root.name}>")

    # 2. The personal schema of the paper's running example.
    personal = book_personal_schema()
    print(f"\npersonal schema: {personal.names()} (user asks e.g. /book[title='Iliad']/author)")

    # 3. Match with a token-based name matcher and a synonym dictionary, so that
    #    "author" also finds "writer" and "creator".
    matcher = TokenNameMatcher(synonyms=default_synonyms())
    system = Bellflower(repository, matcher=matcher, element_threshold=0.45, delta=0.6)
    result = system.match(personal)

    # 4. Show the ranked mapping choices the user would assert.
    print(f"\n{result.mapping_count} candidate mappings (delta >= 0.6):")
    for rank, mapping in enumerate(result.mappings[:10], start=1):
        tree = repository.tree(mapping.tree_id)
        targets = []
        for node_id, element in sorted(mapping.assignment.items()):
            path = "/".join(tree.root_path_names(element.ref.node_id))
            targets.append(f"{personal.node(node_id).name} -> /{path}")
        print(f"  #{rank} Δ={mapping.score:.3f} in {tree.name}")
        for target in targets:
            print(f"      {target}")


if __name__ == "__main__":
    main()

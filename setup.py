"""Setuptools entry point.

The pyproject.toml metadata is authoritative; this file exists so that the
package can be installed in editable mode in offline environments whose
setuptools/wheel combination does not support PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Bellflower: clustered XML schema matching "
        "(reproduction of Smiljanic et al., ICDE 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The matching kernels (repro/kernels/) vectorize the hot loops with
    # numpy; the scalar reference implementation remains as the differential
    # test oracle and the fallback for degenerate inputs.
    install_requires=["numpy>=1.22"],
)

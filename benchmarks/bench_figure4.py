"""Benchmarks regenerating Figure 4 (cluster-size distribution per reclustering technique).

Each benchmark times one clustering run of the adapted k-means under a
different reclustering strategy; the recorded extra_info carries the cluster
counts and the tiny-cluster counts that make up the figure's bars.
"""

from __future__ import annotations

import pytest

from repro.clustering.convergence import RelaxedConvergence
from repro.clustering.initialization import MEminInitializer
from repro.clustering.kmeans import KMeansClusterer
from repro.clustering.reclustering import JoinReclustering, NoReclustering, join_and_remove
from repro.experiments.figure4 import run as run_figure4

STRATEGIES = {
    "no-reclustering": NoReclustering,
    "join": lambda: JoinReclustering(distance_threshold=3.0),
    "join-and-remove": lambda: join_and_remove(distance_threshold=3.0, min_size=2),
}


@pytest.mark.parametrize("strategy_name", sorted(STRATEGIES))
def test_figure4_clustering_per_strategy(benchmark, bench_workload, strategy_name):
    """Clustering time under each reclustering strategy (the runs behind Figure 4)."""

    def cluster_once():
        clusterer = KMeansClusterer(
            initializer=MEminInitializer(),
            reclustering=STRATEGIES[strategy_name](),
            convergence=RelaxedConvergence(),
        )
        return clusterer.cluster(bench_workload.candidates, bench_workload.repository)

    clustering = benchmark.pedantic(cluster_once, rounds=3, iterations=1)
    sizes = clustering.clusters.mapping_element_sizes(bench_workload.candidates)
    benchmark.extra_info["clusters"] = clustering.clusters.cluster_count
    benchmark.extra_info["iterations"] = clustering.iterations
    benchmark.extra_info["tiny_clusters"] = sum(1 for size in sizes if size == 1)
    assert clustering.clusters.cluster_count >= 1


def test_figure4_full_experiment(benchmark, bench_workload, bench_config, capsys):
    """The full Figure 4 experiment (three strategies, one shared workload)."""
    result = benchmark.pedantic(
        run_figure4, args=(bench_config, bench_workload), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    by_name = {series.strategy_name: series for series in result.series}
    assert by_name["join & remove"].histogram["[1,1]"] <= by_name["no reclustering"].histogram["[1,1]"]

"""Micro-benchmarks of the substrates the matching pipeline is built on.

These cover the components whose cost the paper discusses qualitatively: the
fuzzy string matcher (CompareStringFuzzy stand-in), the node-labeling distance
oracle ("low-cost computation of path lengths"), the element-matching scan, and
the analytical search-space model of Section 2.3.
"""

from __future__ import annotations

import pytest

from repro.labeling.distance import TreeDistanceOracle
from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector
from repro.matchers.string_metrics import damerau_levenshtein_distance, fuzzy_similarity
from repro.mapping.search_space import search_space_size, theoretical_reduction_factor
from repro.schema.node import SchemaNode
from repro.workload.personal import paper_personal_schema

NAME_PAIRS = [
    ("authorName", "author_name"),
    ("shipToAddress", "shippingAddress"),
    ("publicationYear", "pubYear"),
    ("customerIdentifier", "custId"),
    ("emailAddress", "eMail"),
    ("title", "titel"),
]


def test_fuzzy_similarity_over_name_pairs(benchmark):
    """Normalized Damerau-Levenshtein over a batch of realistic element-name pairs."""

    def run_batch():
        return [fuzzy_similarity(a, b) for a, b in NAME_PAIRS]

    scores = benchmark(run_batch)
    assert all(0.0 <= score <= 1.0 for score in scores)


def test_damerau_levenshtein_long_names(benchmark):
    first = "internationalStandardBookNumber"
    second = "internationalStandardSerialNumber"
    distance = benchmark(damerau_levenshtein_distance, first, second)
    assert distance > 0


def test_distance_oracle_construction(benchmark, bench_workload):
    """Euler-tour + sparse-table preprocessing of the largest repository tree."""
    largest = max(bench_workload.repository.trees(), key=lambda tree: tree.node_count)
    oracle = benchmark(TreeDistanceOracle, largest)
    assert oracle.distance(0, largest.node_count - 1) >= 0


def test_distance_oracle_queries(benchmark, bench_workload):
    """A batch of O(1) path-length queries on a preprocessed tree."""
    largest = max(bench_workload.repository.trees(), key=lambda tree: tree.node_count)
    oracle = TreeDistanceOracle(largest)
    pairs = [(i, (i * 7 + 3) % largest.node_count) for i in range(0, largest.node_count, 2)]

    def run_queries():
        return sum(oracle.distance(a, b) for a, b in pairs)

    total = benchmark(run_queries)
    assert total >= 0


def test_naive_distance_queries_for_comparison(benchmark, bench_workload):
    """The same queries answered by root-path walking (what the oracle replaces)."""
    largest = max(bench_workload.repository.trees(), key=lambda tree: tree.node_count)
    pairs = [(i, (i * 7 + 3) % largest.node_count) for i in range(0, largest.node_count, 2)]

    def run_queries():
        return sum(largest.distance(a, b) for a, b in pairs)

    total = benchmark(run_queries)
    assert total >= 0


def test_element_matching_stage(benchmark, bench_workload, bench_config):
    """The full personal-schema x repository element-matching scan (step 2 of Fig. 2)."""
    selector = MappingElementSelector(FuzzyNameMatcher(), threshold=bench_config.element_threshold)

    def run_selection():
        return selector.select(paper_personal_schema(), bench_workload.repository)

    candidates = benchmark.pedantic(run_selection, rounds=3, iterations=1)
    assert candidates.total() > 0


def test_search_space_model(benchmark):
    """The analytical search-space computation of Section 2.3."""

    def evaluate_model():
        total = 0
        for clusters in (1, 10, 100, 250):
            total += search_space_size({0: 1500 // clusters, 1: 1500 // clusters, 2: 1500 // clusters})
            theoretical_reduction_factor(clusters, 3)
        return total

    assert benchmark(evaluate_model) > 0

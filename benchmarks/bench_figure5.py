"""Benchmarks regenerating Figure 5 (preserved mappings per threshold and variant).

The preservation curves require the Table 1 matching runs (the clustered and
non-clustered mapping lists); the benchmark times the full pipeline from shared
mapping elements to the curves, and prints the regenerated figure series.
"""

from __future__ import annotations

from repro.experiments.figure5 import run as run_figure5
from repro.experiments.table1 import run as run_table1


def test_figure5_full_experiment(benchmark, bench_workload, bench_config, capsys):
    """Matching all variants plus computing the preservation curves (Figure 5)."""
    result = benchmark.pedantic(
        run_figure5, args=(bench_config, bench_workload), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    assert all(point.fraction == 1.0 for point in result.curves["tree"])
    for variant in ("small", "medium", "large"):
        fractions = result.fractions(variant)
        assert fractions[-1] >= fractions[0] - 1e-9


def test_figure5_preservation_computation_only(benchmark, bench_workload, bench_config):
    """Just the preservation-curve computation, given precomputed matching runs."""
    table1 = run_table1(bench_config, bench_workload)
    reference = table1.results["tree"].mappings
    clustered = table1.results["medium"].mappings

    from repro.system.metrics import preservation_curve

    curve = benchmark(preservation_curve, reference, clustered)
    assert len(curve) == 6

"""Scaling benchmark: repository sizes from 2 500 to 10 200 elements.

The paper built "several smaller repositories with sizes from 2500 to 10200
elements" and argues (Sec. 2.3) that clustering turns the matching complexity
from polynomial to roughly linear in the repository size.  Each benchmark here
matches the paper's personal schema against a repository of a given size, with
and without clustering; extra_info records the search-space sizes so the trend
can be read straight from the benchmark log.

The large sizes only run at paper scale (REPRO_BENCH_SCALE=paper) to keep the
default benchmark run short.
"""

from __future__ import annotations

import os

import pytest

from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.system.bellflower import Bellflower
from repro.system.variants import clustering_variant
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import paper_personal_schema

_PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "paper"
REPOSITORY_SIZES = (2500, 5000, 7500, 10200) if _PAPER_SCALE else (1000, 2500)
VARIANTS = ("medium", "tree")


@pytest.fixture(scope="module")
def scaled_workloads():
    """Repositories of increasing size plus their element-matching results."""
    workloads = {}
    personal = paper_personal_schema()
    for size in REPOSITORY_SIZES:
        profile = RepositoryProfile(target_node_count=size, name=f"scaling-{size}")
        repository = RepositoryGenerator(profile).generate()
        system = Bellflower(repository, element_threshold=0.45)
        candidates = system.element_matching(personal)
        workloads[size] = (repository, personal, candidates)
    return workloads


@pytest.mark.parametrize("size", REPOSITORY_SIZES)
@pytest.mark.parametrize("variant_name", VARIANTS)
def test_matching_scales_with_repository_size(benchmark, scaled_workloads, size, variant_name):
    repository, personal, candidates = scaled_workloads[size]

    def match_once():
        system = Bellflower(
            repository,
            generator=BranchAndBoundGenerator(),
            clusterer=clustering_variant(variant_name).make_clusterer(),
            element_threshold=0.45,
            delta=0.75,
            variant_name=variant_name,
        )
        return system.match(personal, candidates=candidates)

    result = benchmark.pedantic(match_once, rounds=2, iterations=1)
    benchmark.extra_info["repository_nodes"] = repository.node_count
    benchmark.extra_info["search_space"] = result.search_space
    benchmark.extra_info["partial_mappings"] = result.partial_mappings
    assert result.search_space >= 0

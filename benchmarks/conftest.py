"""Shared workloads for the benchmark suite.

Benchmarks default to a scaled-down workload (~2 500 repository elements) so
that ``pytest benchmarks/ --benchmark-only`` completes in a couple of minutes;
set ``REPRO_BENCH_SCALE=paper`` to run at the paper's scale (~9 750 elements,
the configuration whose output is recorded in EXPERIMENTS.md).

The expensive setup steps — generating the repository and running the element
matching stage — are session-scoped fixtures, so benchmark timings isolate the
stage being measured (clustering, mapping generation, ...) exactly as the paper
reports them.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig, build_workload
from repro.labeling.distance import RepositoryDistanceOracle


def _benchmark_config() -> ExperimentConfig:
    if os.environ.get("REPRO_BENCH_SCALE", "quick").lower() == "paper":
        return ExperimentConfig.paper_scale()
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return _benchmark_config()


@pytest.fixture(scope="session")
def bench_workload(bench_config):
    return build_workload(bench_config)


@pytest.fixture(scope="session")
def bench_oracle(bench_workload) -> RepositoryDistanceOracle:
    return RepositoryDistanceOracle(bench_workload.repository)

"""Ablation benchmarks for the remaining design choices of DESIGN.md §4.

Covers centroid seeding (MEmin vs. random vs. per-tree), the clustering
distance measure (path length vs. blended), the convergence criterion (relaxed
vs. total stability) and the offline-fragment baseline.  The generator ablation
lives in ``bench_generators.py`` and the reclustering ablation in
``bench_figure4.py``.
"""

from __future__ import annotations

import pytest

from repro.clustering.baselines import FragmentClusterer
from repro.clustering.convergence import RelaxedConvergence, TotalStability
from repro.clustering.distance import BlendedDistance, PathLengthDistance
from repro.clustering.initialization import MEminInitializer, PerTreeInitializer, RandomInitializer
from repro.clustering.kmeans import KMeansClusterer
from repro.clustering.reclustering import join_and_remove
from repro.labeling.distance import RepositoryDistanceOracle


def _kmeans(**overrides):
    defaults = dict(
        initializer=MEminInitializer(),
        reclustering=join_and_remove(distance_threshold=3.0, min_size=2),
        convergence=RelaxedConvergence(),
    )
    defaults.update(overrides)
    return KMeansClusterer(**defaults)


SEEDING = {
    "me-min": lambda workload: _kmeans(),
    "random-150": lambda workload: _kmeans(initializer=RandomInitializer(centroid_count=150, seed=7)),
    "per-tree-2": lambda workload: _kmeans(initializer=PerTreeInitializer(centroids_per_tree=2, seed=7)),
}


@pytest.mark.parametrize("seeding_name", sorted(SEEDING))
def test_centroid_seeding_ablation(benchmark, bench_workload, seeding_name):
    """Clustering time and useful-cluster yield per centroid-seeding heuristic."""

    def cluster_once():
        clusterer = SEEDING[seeding_name](bench_workload)
        return clusterer.cluster(bench_workload.candidates, bench_workload.repository)

    clustering = benchmark.pedantic(cluster_once, rounds=3, iterations=1)
    useful = clustering.clusters.useful_clusters(bench_workload.candidates)
    benchmark.extra_info["clusters"] = clustering.clusters.cluster_count
    benchmark.extra_info["useful_clusters"] = len(useful)
    assert clustering.clusters.cluster_count >= 1


@pytest.mark.parametrize("distance_name", ["path-length", "blended"])
def test_clustering_distance_ablation(benchmark, bench_workload, distance_name):
    """Path-length distance (paper) vs. the blended path+name distance (future work)."""
    oracle = RepositoryDistanceOracle(bench_workload.repository)
    if distance_name == "path-length":
        distance = PathLengthDistance(oracle)
    else:
        distance = BlendedDistance(oracle, bench_workload.repository, path_weight=0.7)

    def cluster_once():
        return _kmeans(distance=distance).cluster(bench_workload.candidates, bench_workload.repository)

    clustering = benchmark.pedantic(cluster_once, rounds=3, iterations=1)
    benchmark.extra_info["clusters"] = clustering.clusters.cluster_count
    assert clustering.clusters.cluster_count >= 1


@pytest.mark.parametrize("criterion_name", ["relaxed-5pct", "total-stability"])
def test_convergence_criterion_ablation(benchmark, bench_workload, criterion_name):
    """The paper's relaxed 5% criterion vs. full stability (iteration counts differ)."""
    criterion = RelaxedConvergence() if criterion_name == "relaxed-5pct" else TotalStability(max_iterations=30)

    def cluster_once():
        return _kmeans(convergence=criterion).cluster(bench_workload.candidates, bench_workload.repository)

    clustering = benchmark.pedantic(cluster_once, rounds=3, iterations=1)
    benchmark.extra_info["iterations"] = clustering.iterations
    assert clustering.iterations >= 1


def test_offline_fragment_baseline(benchmark, bench_workload):
    """Rahm-style offline fragmentation as the clustering step (DESIGN.md baseline)."""

    def cluster_once():
        return FragmentClusterer(max_fragment_size=20).cluster(
            bench_workload.candidates, bench_workload.repository
        )

    clustering = benchmark.pedantic(cluster_once, rounds=3, iterations=1)
    benchmark.extra_info["clusters"] = clustering.clusters.cluster_count
    assert clustering.clusters.cluster_count >= 1

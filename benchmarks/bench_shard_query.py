#!/usr/bin/env python
"""Shard benchmark: fan-out/merge identity, cross-shard pruning, batch speedup.

Exercises the :mod:`repro.shard` subsystem over one generated repository and
gates three claims:

``outputs identical`` (hard gate)
    The sharded service's rankings — for every shard count tested, with and
    without ``top_k``, under serial, thread-pool and process-pool executors —
    are bit-identical to the unsharded :class:`~repro.service.MatchingService`.

``cross-shard incumbent pruning fires`` (hard gate)
    In top-``k`` mode all shards share one incumbent pool; the merged
    ``incumbent_pruned_partial_mappings`` counter must be positive, i.e. a
    mapping found on one shard actually pruned search on others.

``batch fan-out speedup`` (``--min-batch-speedup``)
    The batched front-end (``match_many``: fingerprint dedup + bounded result
    cache + one task per (query, shard)) must beat the same duplicate-heavy
    workload replayed query-by-query against the unsharded service.  This
    speedup is deterministic (dedup arithmetic, not parallelism), so it holds
    on single-core runners too.

Executor wall-clock times are also reported.  ``--min-process-speedup`` gates
the *shared-memory* process-pool fan-out (``share_memory()`` + attach-by-name
workers) against the serial sharded path; now that workers attach to a
published segment instead of unpickling every shard, the floor defaults to
1.0x.  The gate is auto-skipped (and recorded as such) on single-core
machines, where a process pool cannot win by construction.  The plain
(copy-per-task) process timing is still reported for comparison.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_shard_query.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import MatchingService
from repro.shard import ShardedMatchingService
from repro.utils.executor import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
    publication_personal_schema,
    purchase_personal_schema,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_shard_query.json"


def distinct_schemas():
    return [
        paper_personal_schema(),
        contact_personal_schema(),
        book_personal_schema(),
        publication_personal_schema(),
        purchase_personal_schema(),
    ]


def ranking_keys(results):
    return [result.ranking_key() for result in results]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=8_000, help="target repository node count")
    parser.add_argument("--shards", type=int, default=4, help="shard count for the headline runs")
    parser.add_argument("--threshold", type=float, default=0.55, help="element similarity threshold")
    parser.add_argument("--top-k", type=int, default=5, dest="top_k", help="top-k bound for the pruning runs")
    parser.add_argument("--batch-repeat", type=int, default=5, help="how often each distinct query repeats in the batch workload")
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=2.0,
        help="fail when the batched sharded front-end is not this many times faster than "
        "replaying the workload query-by-query against the unsharded service (0 disables)",
    )
    parser.add_argument(
        "--min-process-speedup",
        type=float,
        default=1.0,
        help="fail when the shared-memory process-pool fan-out is not this many times "
        "faster than the serial sharded path (0 disables; auto-skipped on single-core "
        "machines)",
    )
    parser.add_argument(
        "--tasks-per-worker",
        type=int,
        default=1,
        dest="tasks_per_worker",
        help="chunking knob forwarded to ProcessPoolTaskExecutor",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    profile = RepositoryProfile(
        target_node_count=args.nodes, min_tree_size=20, max_tree_size=220, name="bench-shard"
    )
    repository = RepositoryGenerator(profile).generate()
    schemas = distinct_schemas()

    unsharded = MatchingService(repository, element_threshold=args.threshold)
    unsharded.build_derived_state()
    reference_full = [unsharded.match(schema) for schema in schemas]
    reference_topk = [unsharded.match(schema, top_k=args.top_k) for schema in schemas]

    # -- identity across shard counts (serial) --------------------------------
    identical = True
    incumbent_pruned = 0
    for shard_count in (1, 2, args.shards):
        service = ShardedMatchingService.from_repository(
            repository, shard_count, element_threshold=args.threshold, query_cache_size=0
        )
        full = [service.match(schema) for schema in schemas]
        topk = [service.match(schema, top_k=args.top_k) for schema in schemas]
        identical = (
            identical
            and ranking_keys(full) == ranking_keys(reference_full)
            and ranking_keys(topk) == ranking_keys(reference_topk)
        )
        if shard_count == args.shards:
            incumbent_pruned = sum(
                result.counters.get("incumbent_pruned_partial_mappings") for result in topk
            )

    # -- identity + wall clock per executor (the headline shard count) --------
    def timed_run(executor, share_memory=False):
        service = ShardedMatchingService.from_repository(
            repository,
            args.shards,
            element_threshold=args.threshold,
            query_cache_size=0,
            executor=executor,
        )
        service.build_derived_state()
        if share_memory:
            service.share_memory()
        if executor is not None:
            service.match(schemas[0], top_k=args.top_k)  # warm the worker pool
        started = time.perf_counter()
        results = service.match_many(schemas, top_k=args.top_k)
        elapsed = time.perf_counter() - started
        executor_info = None
        if isinstance(executor, ProcessPoolTaskExecutor):
            executor_info = {
                "workers": executor.last_workers_used,
                "chunk_sizes": list(executor.last_chunk_sizes),
                "tasks_per_worker": executor.tasks_per_worker,
            }
        service.close()  # unpublishes the shared segments, if any
        if executor is not None:
            executor.close()
        return elapsed, ranking_keys(results) == ranking_keys(reference_topk), executor_info

    serial_seconds, serial_identical, _ = timed_run(None)
    thread_seconds, thread_identical, _ = timed_run(ThreadPoolTaskExecutor(args.shards))
    process_seconds, process_identical, _ = timed_run(
        ProcessPoolTaskExecutor(args.shards, tasks_per_worker=args.tasks_per_worker)
    )
    shm_seconds, shm_identical, shm_executor = timed_run(
        ProcessPoolTaskExecutor(args.shards, tasks_per_worker=args.tasks_per_worker),
        share_memory=True,
    )
    identical = (
        identical and serial_identical and thread_identical and process_identical and shm_identical
    )
    process_speedup = serial_seconds / process_seconds if process_seconds > 0 else float("inf")
    shm_speedup = serial_seconds / shm_seconds if shm_seconds > 0 else float("inf")

    # -- batched front-end vs query-by-query replay ---------------------------
    batch = [schema for schema in schemas for _ in range(args.batch_repeat)]
    started = time.perf_counter()
    naive_results = [unsharded.match(schema, top_k=args.top_k) for schema in batch]
    naive_seconds = time.perf_counter() - started

    batch_service = ShardedMatchingService.from_repository(
        repository,
        args.shards,
        element_threshold=args.threshold,
        query_cache_size=len(schemas),
    )
    batch_service.build_derived_state()
    started = time.perf_counter()
    batch_results = batch_service.match_many(batch, top_k=args.top_k)
    batch_seconds = time.perf_counter() - started
    identical = identical and ranking_keys(batch_results) == ranking_keys(naive_results)
    batch_speedup = naive_seconds / batch_seconds if batch_seconds > 0 else float("inf")

    single_core = (os.cpu_count() or 1) < 2
    if args.min_process_speedup <= 0:
        process_gate: object = "disabled"
    elif single_core:
        process_gate = "skipped (single-core machine)"
    else:
        process_gate = round(shm_speedup, 3)

    report = {
        "benchmark": "shard_query",
        "cpu_count": os.cpu_count(),
        "process_speedup_gate": process_gate,
        "repository": {"trees": repository.tree_count, "nodes": repository.node_count},
        "shards": args.shards,
        "threshold": args.threshold,
        "top_k": args.top_k,
        "outputs_identical": identical,
        "incumbent_pruned_partial_mappings": incumbent_pruned,
        "serial_batch_seconds": round(serial_seconds, 6),
        "thread_batch_seconds": round(thread_seconds, 6),
        "process_batch_seconds": round(process_seconds, 6),
        "shm_batch_seconds": round(shm_seconds, 6),
        "process_speedup": round(process_speedup, 3),
        "shm_process_speedup": round(shm_speedup, 3),
        "process_executor": shm_executor,
        "shared_memory": True,
        "batch_workload": {
            "queries": len(batch),
            "distinct": len(schemas),
            "unsharded_replay_seconds": round(naive_seconds, 6),
            "sharded_match_many_seconds": round(batch_seconds, 6),
            "speedup": round(batch_speedup, 3),
            "duplicate_queries": batch_service.counters.get("duplicate_queries"),
            "query_cache_hits": batch_service.counters.get("query_cache_hits"),
            "shard_queries": batch_service.counters.get("shard_queries"),
        },
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    if not identical:
        print("FAIL: sharded and unsharded services disagree", file=sys.stderr)
        return 1
    if incumbent_pruned <= 0:
        print("FAIL: cross-shard incumbent pruning never fired", file=sys.stderr)
        return 1
    if args.min_batch_speedup > 0 and batch_speedup < args.min_batch_speedup:
        print(
            f"FAIL: batched fan-out speedup {batch_speedup:.2f}x below required "
            f"{args.min_batch_speedup}x",
            file=sys.stderr,
        )
        return 1
    if args.min_process_speedup > 0 and single_core:
        print("process-speedup gate skipped (single-core machine)")
    elif args.min_process_speedup > 0 and shm_speedup < args.min_process_speedup:
        print(
            f"FAIL: shared-memory process fan-out speedup {shm_speedup:.2f}x below "
            f"required {args.min_process_speedup}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: outputs identical across 1/2/{args.shards} shards and all executors, "
        f"cross-shard pruning cut {incumbent_pruned} partial mappings, "
        f"batched fan-out {batch_speedup:.1f}x faster than query-by-query replay"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Ingestion benchmark: byte-identity, resume-identity, replay bit-identity.

End-to-end gates over the ``repro.ingest`` pipeline and the trace replayer
(ISSUE 10's acceptance criteria):

``byte identity`` (hard gate)
    Ingesting the bundled corpus plus a deterministic synthetic directory
    source twice, into two fresh run directories, must produce byte-identical
    frozen snapshots.

``resume identity`` (hard gate)
    A third run killed at the dedupe stage boundary and resumed must produce
    the same bytes as the uninterrupted runs.

``replay bit identity`` (hard gate)
    A Zipf-skewed synthetic query trace replayed against the ingested
    snapshot (unsharded) and against a 3-shard split of the same forest must
    report identical per-query ranking digests.

``dedup speedup`` (gated by ``--min-dedup-speedup``)
    Replaying the skewed trace through ``match_many`` (fingerprint dedup)
    must beat query-by-query ``match`` by at least the configured factor.
    The candidate cache only reuses element-match tables — the mapping
    search re-runs for every single-query duplicate — so the collapsed
    searches are the whole win here.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_ingest.py
    PYTHONPATH=src python benchmarks/bench_ingest.py --trace-length 120 --rounds 5
"""

from __future__ import annotations

import argparse
import contextlib
import hashlib
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ingest import BundledCorpusSource, DirectorySource, IngestConfig, IngestPipeline
from repro.shard import ShardedMatchingService
from repro.storage import load_frozen_service
from repro.utils.rng import SeededRandom
from repro.workload.trace import replay_trace, synthesize_zipf_trace
from repro.workload.vocabulary import DOMAINS

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_ingest.json"


def build_synthetic_corpus(directory: Path, seed: int) -> None:
    """A deterministic directory source: one DTD per domain plus edge cases.

    Pure function of ``seed`` — the byte-identity gate depends on two
    invocations writing the same files.
    """
    directory.mkdir(parents=True, exist_ok=True)
    base = SeededRandom(seed)
    for domain in DOMAINS:
        rng = base.spawn("bench-corpus", domain.name)
        root = rng.choice(list(domain.roots))
        container = rng.choice(list(domain.containers))
        leaves = rng.sample(list(domain.leaves), k=min(4, len(domain.leaves)))
        lines = [
            f"<!ELEMENT {root} ({container}+)>",
            f"<!ELEMENT {container} ({', '.join(leaves)})>".replace(", ", ", ").replace(", ", ","),
        ]
        for leaf in leaves:
            lines.append(f"<!ELEMENT {leaf} (#PCDATA)>")
        (directory / f"{domain.name}.dtd").write_text("\n".join(lines) + "\n", encoding="utf-8")
    # A content duplicate (dedupe must drop it) and a malformed document
    # (quarantine must absorb it without failing the run).
    first = sorted(path.name for path in directory.glob("*.dtd"))[0]
    (directory / "zz-duplicate.dtd").write_bytes((directory / first).read_bytes())
    (directory / "zz-malformed.xsd").write_text(
        "<xs:schema xmlns:xs='http://www.w3.org/2001/XMLSchema'><broken>", encoding="utf-8"
    )


def run_ingest(run_dir: Path, corpus: Path, config: IngestConfig, **kwargs):
    pipeline = IngestPipeline(
        run_dir, [BundledCorpusSource(), DirectorySource(corpus, label="synthetic")], config
    )
    started = time.perf_counter()
    status = pipeline.run(**kwargs)
    return status, time.perf_counter() - started


def sha256_file(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def measure_replay(trace, backend, rounds: int, use_match_many: bool) -> tuple[float, dict]:
    best = float("inf")
    report = None
    for _ in range(max(rounds, 1)):
        started = time.perf_counter()
        report = replay_trace(trace, backend, use_match_many=use_match_many)
        best = min(best, time.perf_counter() - started)
    return best, report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=20060403)
    parser.add_argument("--trace-length", type=int, default=80, help="queries in the replay trace")
    parser.add_argument("--trace-skew", type=float, default=1.3, help="zipf exponent of the trace")
    parser.add_argument("--rounds", type=int, default=3, help="replay timing rounds (best-of)")
    parser.add_argument("--shards", type=int, default=3, help="shard count for the sharded replay")
    parser.add_argument(
        "--chunk-trees", type=int, default=6,
        help="trees per merge generation (small enough to force multi-generation merges)",
    )
    parser.add_argument(
        "--min-dedup-speedup", type=float, default=1.5,
        help="fail when match_many replay is not at least this much faster than "
        "query-by-query replay (0 disables the gate; the ratio is always reported)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--workdir", type=Path, default=None, help="scratch dir for runs (default: temp dir)"
    )
    args = parser.parse_args(argv)

    with contextlib.ExitStack() as stack:
        if args.workdir is None:
            workdir = Path(stack.enter_context(tempfile.TemporaryDirectory(prefix="bench_ingest_")))
        else:
            workdir = args.workdir
            workdir.mkdir(parents=True, exist_ok=True)
        return _run(args, workdir)


def _run(args, workdir: Path) -> int:
    corpus = workdir / "corpus"
    build_synthetic_corpus(corpus, args.seed)
    config = IngestConfig(merge_chunk_trees=args.chunk_trees)

    status_a, seconds_a = run_ingest(workdir / "run-a", corpus, config)
    status_b, seconds_b = run_ingest(workdir / "run-b", corpus, config)
    digest_a = status_a["snapshot"]["sha256"]
    byte_identical = digest_a == status_b["snapshot"]["sha256"]

    # Kill at the dedupe boundary, then resume in a fresh pipeline object
    # (sources re-supplied, config recovered from the manifest).
    run_ingest(workdir / "run-c", corpus, config, stop_after="dedupe")
    resumed = IngestPipeline(
        workdir / "run-c",
        [BundledCorpusSource(), DirectorySource(corpus, label="synthetic")],
    )
    started = time.perf_counter()
    status_c = resumed.run(resume=True)
    resume_seconds = time.perf_counter() - started
    resume_identical = status_c["snapshot"]["sha256"] == digest_a

    snapshot_path = Path(status_a["snapshot"]["path"])
    trace = synthesize_zipf_trace(args.trace_length, args.seed, skew=args.trace_skew)

    # Default cache sizes on both sides: query_cache_size=0 is the documented
    # escape hatch that answers every batch entry independently, which would
    # turn the dedup measurement into noise.  The candidate cache does not
    # collapse the per-duplicate mapping search, so the comparison stays fair.
    service = load_frozen_service(snapshot_path)
    batched_seconds, batched_report = measure_replay(trace, service, args.rounds, True)
    single_seconds, single_report = measure_replay(trace, service, args.rounds, False)

    from repro.schema.repository import SchemaRepository
    from repro.schema.serialization import tree_from_dict, tree_to_dict

    thawed = SchemaRepository(name="bench-ingest")
    for tree in service.repository.trees():
        thawed.add_tree(tree_from_dict(tree_to_dict(tree)))
    sharded = ShardedMatchingService.from_repository(
        thawed,
        args.shards,
        element_threshold=config.element_threshold,
        delta=config.delta,
        partition_max_fragment_size=config.partition_max_fragment_size,
    )
    try:
        _, sharded_report = measure_replay(trace, sharded, 1, True)
    finally:
        sharded.close()

    replay_identical = (
        batched_report["query_digests"] == single_report["query_digests"]
        and batched_report["query_digests"] == sharded_report["query_digests"]
    )
    dedup_speedup = single_seconds / batched_seconds if batched_seconds > 0 else float("inf")

    report = {
        "benchmark": "ingest",
        "seed": args.seed,
        "corpus": {
            "documents": status_a["stages"]["fetch"].get("documents"),
            "quarantined": len(status_a["quarantined"]),
            "kept": status_a["stages"]["dedupe"].get("kept"),
            "dropped": status_a["stages"]["dedupe"].get("dropped"),
            "generations": status_a["stages"]["merge"].get("generations"),
        },
        "ingest_seconds": {"first": round(seconds_a, 3), "second": round(seconds_b, 3)},
        "resume_seconds": round(resume_seconds, 3),
        "snapshot_sha256": digest_a,
        "byte_identical": byte_identical,
        "resume_identical": resume_identical,
        "trace": {
            "length": args.trace_length,
            "skew": args.trace_skew,
            "unique_queries": batched_report["unique_queries"],
            "option_groups": batched_report["option_groups"],
            "ranking_digest": batched_report["ranking_digest"],
        },
        "replay_identical": replay_identical,
        "replay_seconds": {
            "match_many": round(batched_seconds, 6),
            "single": round(single_seconds, 6),
        },
        "dedup_speedup": round(dedup_speedup, 3),
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    if not byte_identical:
        print("FAIL: two identical ingestion runs produced different snapshot bytes", file=sys.stderr)
        return 1
    if not resume_identical:
        print("FAIL: the killed-and-resumed run diverged from the uninterrupted snapshot", file=sys.stderr)
        return 1
    if not replay_identical:
        print("FAIL: trace replay digests diverge across backends/replay modes", file=sys.stderr)
        return 1
    if args.min_dedup_speedup > 0 and dedup_speedup < args.min_dedup_speedup:
        print(
            f"FAIL: match_many replay speedup {dedup_speedup:.2f}x is below the "
            f"{args.min_dedup_speedup:.2f}x gate",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: snapshots byte-identical (sha256 {digest_a[:12]}…), resume identical, "
        f"replay bit-identical across {args.shards}-shard and unsharded backends, "
        f"match_many dedup speedup {dedup_speedup:.2f}x "
        f"({batched_report['unique_queries']}/{args.trace_length} unique queries)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmarks regenerating Table 1 (cluster properties & mapping-generator performance).

One benchmark per clustering variant measures the work the paper's Table 1b
times: clustering plus per-cluster mapping generation (the element-matching
stage is shared setup, exactly as in the paper where all variants reuse the
same 4 520 mapping elements).  The final test prints the regenerated Table 1
rows so the numbers land in the benchmark log.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import run as run_table1
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.system.bellflower import Bellflower
from repro.system.variants import clustering_variant

VARIANTS = ("small", "medium", "large", "tree")


def _match_once(workload, config, variant_name):
    variant = clustering_variant(variant_name)
    system = Bellflower(
        workload.repository,
        objective=config.objective(),
        generator=BranchAndBoundGenerator(),
        clusterer=variant.make_clusterer(),
        element_threshold=config.element_threshold,
        delta=config.delta,
        variant_name=variant.name,
    )
    return system.match(workload.personal_schema, delta=config.delta, candidates=workload.candidates)


@pytest.mark.parametrize("variant_name", VARIANTS)
def test_table1_variant_matching(benchmark, bench_workload, bench_config, variant_name):
    """Clustering + mapping generation time per clustering variant (Table 1b columns)."""
    result = benchmark.pedantic(
        _match_once,
        args=(bench_workload, bench_config, variant_name),
        rounds=3,
        iterations=1,
    )
    assert result.mapping_count >= 0
    benchmark.extra_info["useful_clusters"] = result.useful_cluster_count
    benchmark.extra_info["search_space"] = result.search_space
    benchmark.extra_info["partial_mappings"] = result.partial_mappings
    benchmark.extra_info["mappings_above_delta"] = result.mapping_count


def test_table1_full_experiment(benchmark, bench_workload, bench_config, capsys):
    """The complete Table 1 experiment (all four variants) in one go."""
    result = benchmark.pedantic(
        run_table1, args=(bench_config, bench_workload), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    spaces = {row["variant"]: row["search_space"] for row in result.rows}
    assert spaces["small"] <= spaces["tree"]

#!/usr/bin/env python
"""Resilience benchmark: hedged tail latency, seeded chaos trials, failover.

Exercises the :mod:`repro.resilience` subsystem through the sharded query
path and gates three claims:

``hedged p99`` (``--max-hedged-p99-ratio``, hard gate)
    With one shard injected as a 100ms straggler, request hedging must cut
    the p99 query latency to at most half of the unhedged run.  Stragglers
    hit *primary* attempts (even call indexes); the hedge models a retry on a
    different replica path and runs clean.

``zero non-marked divergence`` (hard gate)
    Across ``--chaos-trials`` seeded trials of probabilistic injected crashes
    and delays, every result that diverges from the fault-free reference
    ranking must be *marked* (``degraded`` and/or ``partial``) or be a loud
    typed error.  A silent wrong answer — divergent but unmarked — fails the
    run.  Trials that retries/hedges fully absorb must stay bit-identical.

``degraded failover`` (hard gate)
    The ISSUE's acceptance scenario: one permanently dead shard plus one
    100ms straggler.  Queries must still answer (degraded, hedged), and the
    surviving mappings must be path-record-identical to a healthy service
    built over only the surviving shards' trees.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import encode
from repro.errors import ShardError
from repro.resilience import (
    BreakerPolicy,
    FaultPlan,
    FaultSpec,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.schema.repository import SchemaRepository
from repro.service import MatchingService
from repro.shard import ShardedMatchingService
from repro.shard.service import copy_tree
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

STRAGGLER_MS = 100.0


def fast_retry(max_attempts=3):
    return RetryPolicy(base_delay_ms=1.0, max_delay_ms=5.0, multiplier=2.0, jitter=0.5)


def make_resilient(repository, shards, threshold, policy):
    return ShardedMatchingService.from_repository(
        repository, shards, element_threshold=threshold, query_cache_size=0, resilience=policy
    )


def percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def ranking_keys(results):
    return [result.ranking_key() for result in results]


def path_records(service, personal, result):
    return [
        (record.score, record.tree, record.assignment)
        for record in (
            encode.mapping_record(service.repository, personal, mapping)
            for mapping in result.mappings
        )
    ]


def measure_tail_latency(repository, args, schemas):
    """Unhedged vs hedged p99 under an injected 100ms straggler shard."""

    def run(plan, hedge_delay_ms):
        policy = ResiliencePolicy(
            retry=fast_retry(),
            hedge_delay_ms=hedge_delay_ms,
            fault_plan=plan,
            max_workers=4,
        )
        service = make_resilient(repository, args.shards, args.threshold, policy)
        latencies = []
        try:
            service.match(schemas[0])  # warm pools + element-match tables
            for index in range(args.latency_queries):
                schema = schemas[index % len(schemas)]
                started = time.perf_counter()
                service.match(schema)
                latencies.append(time.perf_counter() - started)
            counters = service.counters.as_dict()
        finally:
            service.close()
        return latencies, counters

    # Unhedged: every call to the straggler shard is a primary and stalls.
    unhedged_plan = FaultPlan(
        specs=(FaultSpec(key="shard-1", kind="delay", delay_ms=STRAGGLER_MS),)
    )
    # Hedged: primaries (even call indexes) stall, the hedge path runs clean.
    hedged_plan = FaultPlan(
        specs=(
            FaultSpec(key="shard-1", kind="delay", delay_ms=STRAGGLER_MS, calls={"every": 2}),
        )
    )
    unhedged, _ = run(unhedged_plan, hedge_delay_ms=None)
    hedged, hedged_counters = run(hedged_plan, hedge_delay_ms=args.hedge_ms)
    return {
        "queries": args.latency_queries,
        "straggler_ms": STRAGGLER_MS,
        "hedge_delay_ms": args.hedge_ms,
        "unhedged_p50_seconds": round(percentile(unhedged, 0.5), 6),
        "unhedged_p99_seconds": round(percentile(unhedged, 0.99), 6),
        "hedged_p50_seconds": round(percentile(hedged, 0.5), 6),
        "hedged_p99_seconds": round(percentile(hedged, 0.99), 6),
        "hedges_launched": hedged_counters.get("hedges_launched", 0),
        "hedges_won": hedged_counters.get("hedges_won", 0),
    }


def run_chaos_trials(repository, args, schemas, references):
    """Seeded probabilistic faults; count marked vs non-marked divergences."""
    identical = 0
    marked = 0
    loud_errors = 0
    non_marked_divergences = 0
    for trial in range(args.chaos_trials):
        plan = FaultPlan(
            specs=(
                FaultSpec(key="shard-0", kind="error", probability=0.4),
                FaultSpec(key="shard-1", kind="delay", delay_ms=2.0, probability=0.3),
                FaultSpec(key="shard-2", kind="error", probability=0.2),
            ),
            seed=trial,
        )
        policy = ResiliencePolicy(
            retry=fast_retry(),
            hedge_delay_ms=args.hedge_ms,
            breaker=BreakerPolicy(failure_threshold=3, cooldown_seconds=0.01),
            fault_plan=plan,
            max_workers=4,
        )
        service = make_resilient(repository, args.shards, args.threshold, policy)
        index = trial % len(schemas)
        try:
            result = service.match(schemas[index])
        except ShardError:
            loud_errors += 1  # a total outage answered loudly, not wrongly
            continue
        finally:
            service.close()
        if result.ranking_key() == references[index].ranking_key():
            identical += 1
        elif result.degraded or result.partial:
            marked += 1
        else:
            non_marked_divergences += 1
    return {
        "trials": args.chaos_trials,
        "bit_identical": identical,
        "marked_divergent": marked,
        "loud_errors": loud_errors,
        "non_marked_divergences": non_marked_divergences,
    }


def run_failover_acceptance(repository, args, schemas):
    """Dead shard 0 + straggler shard 1: degraded answers, survivors exact."""
    plan = FaultPlan(
        specs=(
            FaultSpec(key="shard-0", kind="error", message="shard down"),
            FaultSpec(key="shard-1", kind="delay", delay_ms=STRAGGLER_MS, calls={"every": 2}),
        )
    )
    policy = ResiliencePolicy(
        retry=fast_retry(max_attempts=2),
        hedge_delay_ms=args.hedge_ms,
        breaker=BreakerPolicy(failure_threshold=2, cooldown_seconds=60.0),
        fault_plan=plan,
        max_workers=4,
    )
    service = make_resilient(repository, args.shards, args.threshold, policy)
    try:
        results = [service.match(schema) for schema in schemas]
        degraded = all(r.degraded and r.skipped_shards == (0,) for r in results)
        survivors = SchemaRepository(name="survivors")
        for tree_id, shard_id in enumerate(service.assignment):
            if shard_id != 0:
                survivors.add_tree(copy_tree(service.tree(tree_id)))
        restricted = MatchingService(survivors, element_threshold=args.threshold)
        survivors_exact = all(
            path_records(service, schema, result)
            == path_records(restricted, schema, restricted.match(schema))
            for schema, result in zip(schemas, results)
        )
        counters = service.counters.as_dict()
        breaker_states = service.stats()["breaker_states"]
    finally:
        service.close()
    return {
        "queries": len(schemas),
        "all_degraded": degraded,
        "skipped_shard": 0,
        "survivors_exact": survivors_exact,
        "hedges_launched": counters.get("hedges_launched", 0),
        "hedges_won": counters.get("hedges_won", 0),
        "breaker_states": breaker_states,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=800, help="target repository node count")
    parser.add_argument("--shards", type=int, default=3, help="shard count")
    parser.add_argument("--threshold", type=float, default=0.55, help="element similarity threshold")
    parser.add_argument("--latency-queries", type=int, default=40, dest="latency_queries",
                        help="queries per latency run (p99 sample size)")
    parser.add_argument("--hedge-ms", type=float, default=15.0, dest="hedge_ms",
                        help="hedge launch delay in milliseconds")
    parser.add_argument("--chaos-trials", type=int, default=200, dest="chaos_trials",
                        help="seeded fault-injection trials")
    parser.add_argument(
        "--max-hedged-p99-ratio",
        type=float,
        default=0.5,
        help="fail when hedged p99 exceeds this fraction of the unhedged p99 (0 disables)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    profile = RepositoryProfile(
        target_node_count=args.nodes, min_tree_size=10, max_tree_size=60, name="bench-resilience"
    )
    repository = RepositoryGenerator(profile).generate()
    schemas = [paper_personal_schema(), contact_personal_schema(), book_personal_schema()]

    reference = MatchingService(repository, element_threshold=args.threshold)
    references = [reference.match(schema) for schema in schemas]

    # Sanity anchor: resilient mode without faults is bit-identical.
    clean = make_resilient(
        repository,
        args.shards,
        args.threshold,
        ResiliencePolicy(retry=fast_retry(), hedge_delay_ms=args.hedge_ms, max_workers=4),
    )
    try:
        fault_free_identical = ranking_keys(
            [clean.match(schema) for schema in schemas]
        ) == ranking_keys(references)
    finally:
        clean.close()

    latency = measure_tail_latency(repository, args, schemas)
    chaos = run_chaos_trials(repository, args, schemas, references)
    failover = run_failover_acceptance(repository, args, schemas)

    p99_ratio = (
        latency["hedged_p99_seconds"] / latency["unhedged_p99_seconds"]
        if latency["unhedged_p99_seconds"] > 0
        else 0.0
    )
    report = {
        "benchmark": "resilience",
        "repository": {"trees": repository.tree_count, "nodes": repository.node_count},
        "shards": args.shards,
        "threshold": args.threshold,
        "fault_free_identical": fault_free_identical,
        "tail_latency": latency,
        "hedged_p99_ratio": round(p99_ratio, 3),
        "chaos": chaos,
        "failover": failover,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    if not fault_free_identical:
        print("FAIL: fault-free resilient mode diverged from the unsharded service", file=sys.stderr)
        return 1
    if args.max_hedged_p99_ratio > 0 and p99_ratio > args.max_hedged_p99_ratio:
        print(
            f"FAIL: hedged p99 is {p99_ratio:.2f}x the unhedged p99, above the "
            f"allowed {args.max_hedged_p99_ratio}x",
            file=sys.stderr,
        )
        return 1
    if latency["hedges_won"] <= 0:
        print("FAIL: hedging never beat the straggler", file=sys.stderr)
        return 1
    if chaos["non_marked_divergences"] != 0:
        print(
            f"FAIL: {chaos['non_marked_divergences']} chaos trial(s) returned a divergent "
            "result without marking it degraded/partial",
            file=sys.stderr,
        )
        return 1
    if not (failover["all_degraded"] and failover["survivors_exact"]):
        print("FAIL: degraded failover did not preserve the surviving shards' results", file=sys.stderr)
        return 1
    print(
        f"ok: hedging cut the straggler p99 to {p99_ratio:.2f}x of unhedged, "
        f"{chaos['trials']} chaos trials with zero non-marked divergences "
        f"({chaos['bit_identical']} bit-identical, {chaos['marked_divergent']} marked, "
        f"{chaos['loud_errors']} loud errors), failover degraded cleanly to the survivors"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Smoke benchmark: naive vs batch element matching.

Runs the element-matching stage over a generated repository of >= 500 trees
with both selector paths — the naive per-pair scan and the indexed batch
pipeline (name dedup + lossless length/trigram prefilter + pruned
Damerau–Levenshtein kernel) — verifies that the produced mapping-element sets
are identical, and writes the timings plus the batch path's prune/hit
counters to ``BENCH_element_matching.json`` so the perf trajectory is tracked
across PRs.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_element_matching.py

The workload replays several personal schemas and repeats every query
(matching the paper's repeated-query / heavy-traffic scenario, where the
batch path's cross-query memo pays off); the naive path keeps its own
pair-level cache, so the comparison is against the seed's best configuration,
not a strawman.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.matchers.name import FuzzyNameMatcher
from repro.matchers.selection import MappingElementSelector
from repro.utils.counters import CounterSet
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
    publication_personal_schema,
    purchase_personal_schema,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_element_matching.json"


def snapshot(sets):
    return {
        node_id: [(e.ref.global_id, e.similarity) for e in sets.elements_for(node_id)]
        for node_id in sets.personal_node_ids
    }


def run_path(repository, schemas, threshold, use_batch, repeats):
    """One timed sweep: fresh matcher, every schema, ``repeats`` rounds."""
    matcher = FuzzyNameMatcher()
    selector = MappingElementSelector(matcher, threshold=threshold, use_batch=use_batch)
    counters = CounterSet()
    results = []
    started = time.perf_counter()
    for _ in range(repeats):
        results = [selector.select(schema, repository, counters=counters) for schema in schemas]
    elapsed = time.perf_counter() - started
    return elapsed, results, counters


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10_000, help="target repository node count")
    parser.add_argument("--min-tree-size", type=int, default=12)
    parser.add_argument("--max-tree-size", type=int, default=20)
    parser.add_argument("--threshold", type=float, default=0.6, help="element similarity threshold")
    parser.add_argument("--repeats", type=int, default=3, help="rounds per path (repeated-query scenario)")
    parser.add_argument("--min-speedup", type=float, default=3.0, help="fail below this batch speedup (0 disables)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    profile = RepositoryProfile(
        target_node_count=args.nodes,
        min_tree_size=args.min_tree_size,
        max_tree_size=args.max_tree_size,
        name="bench-element-matching",
    )
    repository = RepositoryGenerator(profile).generate()
    if repository.tree_count < 500:
        print(f"warning: repository has only {repository.tree_count} trees (< 500)", file=sys.stderr)
    schemas = [
        paper_personal_schema(),
        contact_personal_schema(),
        book_personal_schema(),
        publication_personal_schema(),
        purchase_personal_schema(),
    ]

    naive_seconds, naive_results, _ = run_path(
        repository, schemas, args.threshold, use_batch=False, repeats=args.repeats
    )
    batch_seconds, batch_results, batch_counters = run_path(
        repository, schemas, args.threshold, use_batch=True, repeats=args.repeats
    )

    identical = all(
        snapshot(naive) == snapshot(batch)
        for naive, batch in zip(naive_results, batch_results)
    )
    speedup = naive_seconds / batch_seconds if batch_seconds > 0 else float("inf")

    report = {
        "benchmark": "element_matching",
        "repository": {
            "trees": repository.tree_count,
            "nodes": repository.node_count,
            "unique_names": repository.name_index().unique_name_count,
        },
        "threshold": args.threshold,
        "personal_schemas": len(schemas),
        "repeats": args.repeats,
        "naive_seconds": round(naive_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "speedup": round(speedup, 3),
        "outputs_identical": identical,
        "batch_counters": batch_counters.as_dict(),
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    if not identical:
        print("FAIL: batch and naive mapping-element sets differ", file=sys.stderr)
        return 1
    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {args.min_speedup}x", file=sys.stderr)
        return 1
    print(f"ok: batch path {speedup:.1f}x faster, outputs identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

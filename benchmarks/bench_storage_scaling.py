#!/usr/bin/env python
"""Storage scaling benchmark: frozen cold-open stays flat, queries sublinear.

Generates repositories of increasing tree count (10k → 100k trees ≈ 100k → 1M
nodes at paper scale), freezes each one, and gates the two claims the frozen
storage subsystem makes:

``cold-open is O(1)``
    Opening a frozen snapshot maps segments instead of parsing them, so the
    first-open latency must stay flat while the repository grows 10x — gated
    by both an absolute ceiling (``--max-open-seconds``, default 100ms) and a
    growth ratio (``--max-open-growth``).  For contrast, the smallest scale
    also loads the equivalent JSON snapshot (report-only: JSON load is linear
    in repository size by construction).

``candidate queries are sublinear``
    With the banded prefix-filter index (always on for frozen indexes), the
    per-query candidate-generation latency across the same 10x growth must
    rise by at most ``--max-query-growth-fraction`` of the size ratio.  The
    band only engages once the edit budget is small — query at
    ``--threshold`` 0.9+ (default 0.92); below that the scan falls back to
    the linear prefilter and the gate would measure the wrong path.

``losslessness`` (hard gate)
    At the smallest scale the banded frozen index must return exactly the
    linear in-memory prefilter's survivor sets and pruned-pair counts.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_storage_scaling.py
    PYTHONPATH=src python benchmarks/bench_storage_scaling.py --tree-scales 2000,20000
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.matchers.index import RepositoryNameIndex
from repro.service import MatchingService, load_snapshot, write_snapshot
from repro.storage import freeze_service, load_frozen_service
from repro.storage.format import _OPEN_CACHE
from repro.workload.generator import RepositoryGenerator, RepositoryProfile

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_storage_scaling.json"

#: Candidate-generation probes: realistic schema-element names (long enough
#: for the band bound to be provable at high thresholds) plus near-misses.
QUERIES = [
    "customernumber",
    "shippingaddress",
    "departmentname",
    "telephonenumber",
    "organizationunit",
    "deliverydate",
    "accountbalance",
    "publicationyear",
    "contactperson",
    "referencecode",
]


def build_frozen(trees: int, workdir: Path):
    """Generate ``trees`` small trees, freeze them, return (repo, path, timings)."""
    profile = RepositoryProfile(
        target_node_count=trees * 10,
        min_tree_size=6,
        max_tree_size=14,
        name=f"storage-scale-{trees}",
    )
    started = time.perf_counter()
    repository = RepositoryGenerator(profile).generate()
    generate_seconds = time.perf_counter() - started

    service = MatchingService(repository)
    target = workdir / f"scale-{trees}.frozen"
    started = time.perf_counter()
    freeze_service(service, target)
    freeze_seconds = time.perf_counter() - started
    return repository, target, generate_seconds, freeze_seconds


def measure_open(path: Path, rounds: int) -> tuple[float, float]:
    """(first-open seconds, best reopen seconds) for one frozen snapshot."""
    _OPEN_CACHE.clear()  # the first round must map + validate from scratch
    timings = []
    for _ in range(max(rounds, 1)):
        started = time.perf_counter()
        load_frozen_service(path)
        timings.append(time.perf_counter() - started)
    return timings[0], min(timings)


def measure_queries(index, threshold: float, rounds: int) -> tuple[float, int]:
    """Best-of-rounds seconds for one pass of all probes, plus survivor total."""
    survivors_total = 0
    best = float("inf")
    for round_number in range(max(rounds, 1)):
        started = time.perf_counter()
        survivors_total = 0
        for query in QUERIES:
            survivors, _ = index.fuzzy_candidates(query, threshold)
            survivors_total += len(survivors)
        best = min(best, time.perf_counter() - started)
    return best, survivors_total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tree-scales",
        type=str,
        default="10000,100000",
        help="comma-separated repository sizes in trees, ascending (~10 nodes per tree)",
    )
    parser.add_argument("--threshold", type=float, default=0.92, help="candidate query threshold")
    parser.add_argument("--rounds", type=int, default=5, help="timing rounds (best-of)")
    parser.add_argument(
        "--json-compare-max-trees",
        type=int,
        default=10_000,
        help="also time the JSON snapshot load at scales up to this many trees (report-only)",
    )
    parser.add_argument(
        "--max-open-seconds",
        type=float,
        default=0.1,
        help="fail when the largest scale's first frozen open exceeds this (0 disables)",
    )
    parser.add_argument(
        "--max-open-growth",
        type=float,
        default=5.0,
        help="fail when first-open latency grows more than this across the scales (0 disables)",
    )
    parser.add_argument(
        "--max-query-growth-fraction",
        type=float,
        default=0.5,
        help="fail when query latency growth exceeds this fraction of the size growth (0 disables)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--workdir", type=Path, default=None, help="scratch dir for frozen files (default: temp dir)"
    )
    args = parser.parse_args(argv)

    scales = sorted(int(token) for token in args.tree_scales.split(",") if token.strip())
    if len(scales) < 2:
        print("FAIL: need at least two --tree-scales to measure growth", file=sys.stderr)
        return 2

    with contextlib.ExitStack() as stack:
        if args.workdir is None:
            workdir = Path(stack.enter_context(tempfile.TemporaryDirectory(prefix="bench_storage_")))
        else:
            workdir = args.workdir
            workdir.mkdir(parents=True, exist_ok=True)
        return _run(args, scales, workdir)


def _run(args, scales, workdir: Path) -> int:
    rows = []
    candidates_identical = True
    for position, trees in enumerate(scales):
        repository, path, generate_seconds, freeze_seconds = build_frozen(trees, workdir)
        first_open, best_open = measure_open(path, args.rounds)
        service = load_frozen_service(path)
        index = service.repository.name_index()
        query_seconds, survivors_total = measure_queries(index, args.threshold, args.rounds)

        row = {
            "trees": repository.tree_count,
            "nodes": repository.node_count,
            "frozen_bytes": path.stat().st_size,
            "generate_seconds": round(generate_seconds, 3),
            "freeze_seconds": round(freeze_seconds, 3),
            "first_open_seconds": round(first_open, 6),
            "best_open_seconds": round(best_open, 6),
            "query_pass_seconds": round(query_seconds, 6),
            "survivors_total": survivors_total,
        }

        if position == 0:
            # Losslessness: the banded frozen index vs the linear in-memory
            # prefilter over the same repository (shared name-id numbering).
            linear = RepositoryNameIndex(repository)
            for query in QUERIES:
                banded_survivors, banded_pruned = index.fuzzy_candidates(query, args.threshold)
                linear_survivors, linear_pruned = linear.fuzzy_candidates(query, args.threshold)
                if (
                    sorted(banded_survivors) != sorted(linear_survivors)
                    or banded_pruned != linear_pruned
                ):
                    candidates_identical = False

        if repository.tree_count <= args.json_compare_max_trees:
            json_path = workdir / f"scale-{trees}.snapshot.json"
            write_snapshot(service, json_path, build=False)
            started = time.perf_counter()
            load_snapshot(json_path)
            row["json_load_seconds"] = round(time.perf_counter() - started, 6)
            row["json_bytes"] = json_path.stat().st_size

        rows.append(row)
        print(json.dumps(row, sort_keys=True), flush=True)

    size_growth = rows[-1]["nodes"] / rows[0]["nodes"]
    open_growth = (
        rows[-1]["first_open_seconds"] / rows[0]["first_open_seconds"]
        if rows[0]["first_open_seconds"] > 0
        else float("inf")
    )
    query_growth = (
        rows[-1]["query_pass_seconds"] / rows[0]["query_pass_seconds"]
        if rows[0]["query_pass_seconds"] > 0
        else float("inf")
    )

    report = {
        "benchmark": "storage_scaling",
        "threshold": args.threshold,
        "rounds": args.rounds,
        "queries": len(QUERIES),
        "scales": rows,
        "size_growth": round(size_growth, 3),
        "open_growth": round(open_growth, 3),
        "query_growth": round(query_growth, 3),
        "query_growth_fraction_of_size": round(query_growth / size_growth, 4),
        "candidates_identical": candidates_identical,
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    if not candidates_identical:
        print(
            "FAIL: banded frozen candidates diverge from the linear prefilter",
            file=sys.stderr,
        )
        return 1
    if args.max_open_seconds > 0 and rows[-1]["first_open_seconds"] > args.max_open_seconds:
        print(
            f"FAIL: first open at {rows[-1]['nodes']} nodes took "
            f"{rows[-1]['first_open_seconds'] * 1000:.1f}ms "
            f"(> {args.max_open_seconds * 1000:.0f}ms)",
            file=sys.stderr,
        )
        return 1
    if args.max_open_growth > 0 and open_growth > args.max_open_growth:
        print(
            f"FAIL: first-open latency grew {open_growth:.2f}x over a "
            f"{size_growth:.0f}x size growth (limit {args.max_open_growth}x)",
            file=sys.stderr,
        )
        return 1
    if (
        args.max_query_growth_fraction > 0
        and query_growth > args.max_query_growth_fraction * size_growth
    ):
        print(
            f"FAIL: query latency grew {query_growth:.2f}x over a {size_growth:.0f}x "
            f"size growth (limit {args.max_query_growth_fraction:.2f} of size growth)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: cold open flat ({open_growth:.2f}x over {size_growth:.0f}x growth, "
        f"{rows[-1]['first_open_seconds'] * 1000:.2f}ms at {rows[-1]['nodes']} nodes), "
        f"queries sublinear ({query_growth:.2f}x), candidates identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

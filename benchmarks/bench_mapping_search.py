#!/usr/bin/env python
"""Mapping-search benchmark: top-k incumbent pruning and executor backends.

Exercises the unified search core (:mod:`repro.mapping.engine`) on a
multi-cluster workload (one cluster per repository tree — the non-clustered
baseline, which maximizes the number of independent per-cluster searches):

``complete search``
    The classic "every mapping with ``Δ >= δ``" semantics, timed under the
    serial, thread-pool and process-pool executors.  All three must produce
    bit-identical rankings *and counters* (hard gate).

``top-k search``
    The same query with ``top_k`` set: the per-cluster searches share a
    :class:`~repro.mapping.engine.TopKPool` incumbent, so mappings found in
    one cluster raise the pruning floor for all others.  Gates: the top-k
    ranking must equal the first k entries of the complete ranking (hard),
    the search must create measurably fewer partial mappings (the paper's
    machine-independent efficiency indicator; ``--min-partial-reduction``)
    with the ``incumbent_pruned_partial_mappings`` counter strictly positive,
    and it must be faster in wall-clock terms (``--min-topk-speedup``).

``process executor``
    Complete-search wall clock under :class:`~repro.utils.executor.ProcessPoolTaskExecutor`
    vs the serial baseline, in two flavours: plain (every task unpickles its
    payload, oracle included) and shared-memory (the repository is published
    via :mod:`repro.service.sharedmem`, so task pickles collapse to a segment
    name and workers attach once).  ``--min-process-speedup`` gates the
    shared-memory flavour — the gate is skipped (and recorded as such) on
    single-core machines, where a process pool cannot win by construction.
    Both flavours must stay bit-identical to serial, counters included.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_mapping_search.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.service import MatchingService
from repro.system.bellflower import Bellflower
from repro.utils.executor import ProcessPoolTaskExecutor, ThreadPoolTaskExecutor
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import contact_personal_schema, paper_personal_schema

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_mapping_search.json"

COUNTERS_OF_INTEREST = (
    "partial_mappings",
    "pruned_partial_mappings",
    "incumbent_pruned_partial_mappings",
    "bound_evaluations",
    "evaluated_mappings",
)


def _best_of(rounds: int, run) -> tuple[float, object]:
    """Best wall-clock of ``rounds`` runs; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=12_000, help="target repository node count")
    parser.add_argument("--min-tree-size", type=int, default=30)
    parser.add_argument("--max-tree-size", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--threshold", type=float, default=0.42, help="element similarity threshold")
    parser.add_argument("--delta", type=float, default=0.55, help="objective threshold δ")
    parser.add_argument("--top-k", type=int, default=5, dest="top_k", help="k for the top-k regime")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds (best-of)")
    parser.add_argument("--workers", type=int, default=None, help="pool size (default: cpu count)")
    parser.add_argument(
        "--min-partial-reduction",
        type=float,
        default=1.2,
        help="fail when the complete search does not create this many times more partial mappings than top-k (0 disables)",
    )
    parser.add_argument(
        "--min-topk-speedup",
        type=float,
        default=1.2,
        help="fail when the top-k search is not this many times faster than the complete one (0 disables)",
    )
    parser.add_argument(
        "--min-process-speedup",
        type=float,
        default=1.0,
        help="fail when the shared-memory process executor does not beat serial by this factor (0 disables; auto-skipped on single-core machines)",
    )
    parser.add_argument(
        "--tasks-per-worker",
        type=int,
        default=1,
        dest="tasks_per_worker",
        help="cluster-chunking knob forwarded to ProcessPoolTaskExecutor",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    profile = RepositoryProfile(
        target_node_count=args.nodes,
        min_tree_size=args.min_tree_size,
        max_tree_size=args.max_tree_size,
        seed=args.seed,
        name="bench-mapping-search",
    )
    repository = RepositoryGenerator(profile).generate()
    schemas = {"paper": paper_personal_schema(), "contact": contact_personal_schema()}

    serial_system = Bellflower(repository, element_threshold=args.threshold, delta=args.delta)
    # Hold the element stage constant across every regime: the benchmark
    # isolates mapping *generation*.
    candidates = {name: serial_system.element_matching(schema) for name, schema in schemas.items()}

    report: dict = {
        "nodes": repository.node_count,
        "trees": repository.tree_count,
        "cpu_count": os.cpu_count(),
        "delta": args.delta,
        "element_threshold": args.threshold,
        "top_k": args.top_k,
        "tasks_per_worker": args.tasks_per_worker,
        "shared_memory": True,
        "queries": {},
        "gates": {},
    }
    failures = []
    outputs_identical = True

    process_pool = ProcessPoolTaskExecutor(args.workers, tasks_per_worker=args.tasks_per_worker)
    shm_pool = ProcessPoolTaskExecutor(args.workers, tasks_per_worker=args.tasks_per_worker)
    thread_pool = ThreadPoolTaskExecutor(args.workers)
    process_system = Bellflower(
        repository, element_threshold=args.threshold, delta=args.delta, executor=process_pool
    )
    shm_system = Bellflower(
        repository, element_threshold=args.threshold, delta=args.delta, executor=shm_pool
    )
    thread_system = Bellflower(
        repository, element_threshold=args.threshold, delta=args.delta, executor=thread_pool
    )
    # Warm the pools once so fork/thread start-up is not billed to the timings.
    process_pool.map(len, [(), ()])
    shm_pool.map(len, [(), ()])
    thread_pool.map(len, [(), ()])

    # Publish the repository into shared memory through a throwaway service
    # facade over the *same* repository object: every system above shares it,
    # so the pickle redirect is switched per regime by toggling the view.
    publisher = MatchingService(
        repository, element_threshold=args.threshold, delta=args.delta, query_cache_size=0
    )
    view = publisher.share_memory()
    first_name = next(iter(schemas))
    shm_system.match(schemas[first_name], candidates=candidates[first_name])  # warm the attach cache
    repository._shared_view = None  # plain regimes must keep copying

    try:
        for name, schema in schemas.items():
            table = candidates[name]

            complete_seconds, complete = _best_of(
                args.rounds, lambda: serial_system.match(schema, candidates=table)
            )
            topk_seconds, topk = _best_of(
                args.rounds, lambda: serial_system.match(schema, candidates=table, top_k=args.top_k)
            )
            thread_seconds, threaded = _best_of(
                args.rounds, lambda: thread_system.match(schema, candidates=table)
            )
            repository._shared_view = None  # plain process path: copy per task
            process_seconds, processed = _best_of(
                args.rounds, lambda: process_system.match(schema, candidates=table)
            )
            repository._shared_view = view  # shm path: workers attach by name
            shm_seconds, shm = _best_of(
                args.rounds, lambda: shm_system.match(schema, candidates=table)
            )
            repository._shared_view = None
            shm_workers = shm_pool.last_workers_used
            shm_chunk_sizes = list(shm_pool.last_chunk_sizes)

            # -- hard identity gates -------------------------------------------
            if topk.ranking_key() != complete.ranking_key()[: args.top_k]:
                failures.append(f"{name}: top-{args.top_k} ranking is not a prefix of the complete ranking")
            for backend_name, backend_result in (
                ("thread", threaded),
                ("process", processed),
                ("process+shm", shm),
            ):
                if backend_result.ranking_key() != complete.ranking_key():
                    failures.append(f"{name}: {backend_name} executor ranking differs from serial")
                    outputs_identical = False
                if (
                    backend_result.generation.counters.as_dict()
                    != complete.generation.counters.as_dict()
                ):
                    failures.append(f"{name}: {backend_name} executor counters differ from serial")
                    outputs_identical = False

            query_report = {
                "useful_clusters": complete.useful_cluster_count,
                "search_space": complete.search_space,
                "mappings_complete": complete.mapping_count,
                "complete_generation_seconds": round(complete_seconds, 6),
                "topk_generation_seconds": round(topk_seconds, 6),
                "thread_generation_seconds": round(thread_seconds, 6),
                "process_generation_seconds": round(process_seconds, 6),
                "shm_generation_seconds": round(shm_seconds, 6),
                "topk_speedup": round(complete_seconds / topk_seconds, 3),
                "process_speedup": round(complete_seconds / process_seconds, 3),
                "shm_process_speedup": round(complete_seconds / shm_seconds, 3),
                "thread_speedup": round(complete_seconds / thread_seconds, 3),
                "process_workers": shm_workers,
                "process_chunk_sizes": shm_chunk_sizes,
                "partial_reduction": round(
                    complete.partial_mappings / max(1, topk.partial_mappings), 3
                ),
                "counters_complete": {
                    key: complete.counters.get(key) for key in COUNTERS_OF_INTEREST
                },
                "counters_topk": {key: topk.counters.get(key) for key in COUNTERS_OF_INTEREST},
            }
            report["queries"][name] = query_report

            # -- pruning gates --------------------------------------------------
            if topk.counters.get("incumbent_pruned_partial_mappings") <= 0:
                failures.append(f"{name}: shared incumbent never pruned a partial mapping")
            if args.min_partial_reduction and query_report["partial_reduction"] < args.min_partial_reduction:
                failures.append(
                    f"{name}: partial-mapping reduction {query_report['partial_reduction']}x "
                    f"< required {args.min_partial_reduction}x"
                )
            if args.min_topk_speedup and query_report["topk_speedup"] < args.min_topk_speedup:
                failures.append(
                    f"{name}: top-k wall-clock speedup {query_report['topk_speedup']}x "
                    f"< required {args.min_topk_speedup}x"
                )

            # -- process-executor gate (shared-memory flavour) ------------------
            if args.min_process_speedup and (os.cpu_count() or 1) < 2:
                report["gates"][f"{name}_process_speedup"] = "skipped (single-core machine)"
            elif args.min_process_speedup:
                report["gates"][f"{name}_process_speedup"] = query_report["shm_process_speedup"]
                if query_report["shm_process_speedup"] < args.min_process_speedup:
                    failures.append(
                        f"{name}: shared-memory process-executor speedup "
                        f"{query_report['shm_process_speedup']}x "
                        f"< required {args.min_process_speedup}x"
                    )
    finally:
        publisher.unshare_memory()
        process_pool.close()
        shm_pool.close()
        thread_pool.close()

    report["outputs_identical"] = outputs_identical
    report["ok"] = not failures
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

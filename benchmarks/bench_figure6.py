"""Benchmarks regenerating Figure 6 (clustering vs. objective-function correlation).

One benchmark per α value times the pair of matching runs (medium clusters and
the non-clustered reference) that produce one curve of the figure; the full
experiment benchmark prints the regenerated table and checks the paper's
qualitative claim (path-heavy objectives are preserved best).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import run as run_figure6
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.system.bellflower import Bellflower
from repro.system.variants import clustering_variant

ALPHAS = (0.25, 0.50, 0.75)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_figure6_matching_per_alpha(benchmark, bench_workload, bench_config, alpha):
    """Medium-cluster matching under one objective-function weighting."""

    def match_once():
        system = Bellflower(
            bench_workload.repository,
            objective=bench_config.objective(alpha=alpha),
            generator=BranchAndBoundGenerator(),
            clusterer=clustering_variant("medium").make_clusterer(),
            element_threshold=bench_config.element_threshold,
            delta=bench_config.delta,
            variant_name=f"medium-alpha-{alpha}",
        )
        return system.match(
            bench_workload.personal_schema,
            delta=bench_config.delta,
            candidates=bench_workload.candidates,
        )

    result = benchmark.pedantic(match_once, rounds=3, iterations=1)
    benchmark.extra_info["mappings"] = result.mapping_count
    assert result.mapping_count >= 0


def test_figure6_full_experiment(benchmark, bench_workload, bench_config, capsys):
    """All three objective functions, clustered and reference runs (Figure 6)."""
    result = benchmark.pedantic(
        run_figure6, args=(bench_config, bench_workload), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.render())
    assert result.mean_preservation(0.25) >= result.mean_preservation(0.75) - 1e-9

"""Ablation benchmark: mapping generators on identical clusters.

Compares the paper's Branch-and-Bound against the exhaustive DFS it improves
on, against B&B without its bounding function, and against the beam / A*
search strategies used by related systems (iMap, LSD) — all on the same
"medium" clusters, so the timing differences are attributable to the search
strategy alone.  This is the ablation DESIGN.md item 4.
"""

from __future__ import annotations

import pytest

from repro.labeling.distance import RepositoryDistanceOracle
from repro.mapping.astar import AStarGenerator
from repro.mapping.beam import BeamSearchGenerator
from repro.mapping.branch_and_bound import BranchAndBoundGenerator
from repro.mapping.exhaustive import ExhaustiveGenerator
from repro.mapping.model import MappingProblem
from repro.system.variants import clustering_variant

GENERATORS = {
    "branch-and-bound": BranchAndBoundGenerator,
    "bnb-no-bounding": lambda: BranchAndBoundGenerator(use_bounding=False),
    "exhaustive": ExhaustiveGenerator,
    "beam-50": lambda: BeamSearchGenerator(beam_width=50),
    "a-star": AStarGenerator,
}


@pytest.fixture(scope="module")
def cluster_problems(bench_workload, bench_config):
    """Mapping problems for every useful medium cluster (shared by all generators)."""
    clusterer = clustering_variant("medium").make_clusterer()
    clustering = clusterer.cluster(bench_workload.candidates, bench_workload.repository)
    oracle = RepositoryDistanceOracle(bench_workload.repository)
    problems = []
    for cluster in clustering.clusters.useful_clusters(bench_workload.candidates):
        problems.append(
            MappingProblem(
                personal_schema=bench_workload.personal_schema,
                candidates=cluster.restricted_candidates(bench_workload.candidates),
                oracle=oracle,
                objective=bench_config.objective(),
                delta=bench_config.delta,
                cluster_id=cluster.cluster_id,
            )
        )
    return problems


@pytest.mark.parametrize("generator_name", sorted(GENERATORS))
def test_generator_over_medium_clusters(benchmark, cluster_problems, generator_name):
    """Total mapping-generation work over all useful medium clusters."""

    def generate_all():
        generator = GENERATORS[generator_name]()
        mappings = 0
        partials = 0
        for problem in cluster_problems:
            result = generator.generate(problem)
            mappings += result.mapping_count
            partials += result.partial_mappings
        return mappings, partials

    mappings, partials = benchmark.pedantic(generate_all, rounds=3, iterations=1)
    benchmark.extra_info["mappings"] = mappings
    benchmark.extra_info["partial_mappings"] = partials
    assert mappings >= 0

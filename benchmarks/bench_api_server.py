#!/usr/bin/env python
"""API benchmark: envelope overhead, unsharded batch speedup, server throughput.

Exercises the :mod:`repro.api` layer over one generated repository and gates
three claims:

``typed results identical`` (hard gate)
    For every workload schema, the ranking served through the typed
    ``MatchRequest`` path is bit-identical to the legacy
    ``match(tree, delta=..., top_k=...)`` path.

``envelope overhead`` (``--max-envelope-overhead``)
    The typed in-process path — ``service.match(MatchRequest)``: option
    validation, typed dispatch, query, response encode (``MatchResponse``)
    — may cost at most this fraction over the legacy in-process path
    (``service.match(tree, ...)``) on the same queries (default 5%).  Both
    paths hold their request objects across calls, as an in-process caller
    does; JSON/wire parsing is *transport* cost, identical for both the
    legacy and v1 serve dialects, and is measured separately by the server
    section.  Measured with the query cache disabled so both paths do full
    search work, and as the median of ``--rounds`` alternating runs so a
    one-off scheduler blip cannot decide the ratio.

``unsharded batch speedup`` (``--min-batch-speedup``)
    ``match_many`` on the *unsharded* service — the fingerprint dedup +
    batching front-end this PR promoted down from the shard layer — must
    beat the same duplicate-heavy workload replayed query-by-query.  The
    win is deterministic dedup arithmetic (duplicates collapse to one
    search), so it holds on single-core runners too.

The asyncio TCP server is also exercised end to end (concurrent clients over
a socket, v1 envelopes) and reported as requests/second; that number is
report-only because socket throughput on shared runners is pure noise.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_api_server.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.envelope import MatchRequest
from repro.api.server import MatcherServer
from repro.service import MatchingService
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
    publication_personal_schema,
    purchase_personal_schema,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_api_server.json"


def distinct_schemas():
    return [
        paper_personal_schema(),
        contact_personal_schema(),
        book_personal_schema(),
        publication_personal_schema(),
        purchase_personal_schema(),
    ]


def bench_envelope_overhead(repository, schemas, args):
    """Median legacy vs typed wall-clock over alternating full-work rounds."""
    service = MatchingService(
        repository,
        element_threshold=args.threshold,
        delta=args.delta,
        query_cache_size=0,  # both paths must do full element matching
    )
    service.build_derived_state()
    requests = [
        MatchRequest.from_wire(
            MatchRequest.from_schema(schema, delta=args.delta, top_k=args.top_k).to_wire()
        )
        for schema in schemas
    ]
    # Identity gate (and warm-up): the typed path must reproduce the legacy
    # rankings, down from the wire form.
    legacy_results = [
        service.match(schema, delta=args.delta, top_k=args.top_k) for schema in schemas
    ]
    typed_responses = [service.match(request) for request in requests]
    identical = all(
        [record.score for record in response.mappings]
        == [mapping.score for mapping in result.mappings]
        and response.mapping_count == len(result.mappings)
        for response, result in zip(typed_responses, legacy_results)
    )

    legacy_times, typed_times = [], []
    for _ in range(args.rounds):
        start = time.perf_counter()
        for schema in schemas:
            service.match(schema, delta=args.delta, top_k=args.top_k)
        legacy_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for request in requests:
            service.match(request)
        typed_times.append(time.perf_counter() - start)
    legacy_s = statistics.median(legacy_times)
    typed_s = statistics.median(typed_times)
    return {
        "identical": identical,
        "legacy_seconds": round(legacy_s, 4),
        "typed_seconds": round(typed_s, 4),
        "overhead_fraction": round(typed_s / legacy_s - 1.0, 4),
    }


def bench_batch_speedup(repository, schemas, args):
    """Duplicate-heavy workload: per-query loop vs promoted ``match_many``."""
    service = MatchingService(
        repository, element_threshold=args.threshold, delta=args.delta
    )
    service.build_derived_state()
    workload = [
        schemas[index % len(schemas)]
        for index in range(len(schemas) * args.batch_repeat)
    ]

    start = time.perf_counter()
    loop_results = [
        service.match(schema, delta=args.delta, top_k=args.top_k) for schema in workload
    ]
    loop_s = time.perf_counter() - start

    start = time.perf_counter()
    batch_results = service.match_many(workload, delta=args.delta, top_k=args.top_k)
    batch_s = time.perf_counter() - start

    identical = [result.ranking_key() for result in loop_results] == [
        result.ranking_key() for result in batch_results
    ]
    return {
        "identical": identical,
        "queries": len(workload),
        "distinct": len(schemas),
        "loop_seconds": round(loop_s, 4),
        "batch_seconds": round(batch_s, 4),
        "speedup": round(loop_s / batch_s, 2) if batch_s else float("inf"),
        "duplicate_queries": service.counters.get("duplicate_queries"),
    }


def bench_server_throughput(repository, schemas, args):
    """End-to-end socket round trips (report-only)."""
    service = MatchingService(
        repository, element_threshold=args.threshold, delta=args.delta
    )
    service.build_derived_state()
    payloads = [
        json.dumps(
            MatchRequest.from_schema(schema, delta=args.delta, top_k=args.top_k).to_wire()
        )
        for schema in schemas
    ]

    async def client(port, count):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        await reader.readline()  # ready
        answered = 0
        for index in range(count):
            writer.write((payloads[index % len(payloads)] + "\n").encode())
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response.get("kind") == "match_response", response
            answered += 1
        writer.close()
        await writer.wait_closed()
        return answered

    async def main():
        server = MatcherServer(service, port=0, max_in_flight=args.clients)
        await server.start()
        start = time.perf_counter()
        try:
            answered = await asyncio.gather(
                *[client(server.port, args.requests_per_client) for _ in range(args.clients)]
            )
        finally:
            await server.stop()
        return sum(answered), time.perf_counter() - start

    answered, elapsed = asyncio.run(main())
    return {
        "clients": args.clients,
        "requests": answered,
        "seconds": round(elapsed, 4),
        "requests_per_second": round(answered / elapsed, 1) if elapsed else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=6_000, help="target repository node count")
    parser.add_argument("--threshold", type=float, default=0.55, help="element similarity threshold")
    parser.add_argument("--delta", type=float, default=0.6, help="objective threshold")
    parser.add_argument("--top-k", type=int, default=5, dest="top_k", help="search bound for every query")
    parser.add_argument("--rounds", type=int, default=3, help="alternating rounds for the overhead median")
    parser.add_argument("--batch-repeat", type=int, default=6, help="how often each distinct query repeats in the batch workload")
    parser.add_argument("--clients", type=int, default=4, help="concurrent TCP clients for the server section")
    parser.add_argument("--requests-per-client", type=int, default=5, dest="requests_per_client")
    parser.add_argument("--seed", type=int, default=20060403)
    parser.add_argument(
        "--max-envelope-overhead", type=float, default=0.05, dest="max_envelope_overhead",
        help="gate: typed-path overhead fraction over the legacy path (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=2.0, dest="min_batch_speedup",
        help="gate: unsharded match_many speedup over the per-query loop (default 2.0)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="benchmark JSON output path")
    args = parser.parse_args(argv)

    profile = RepositoryProfile(
        target_node_count=args.nodes, seed=args.seed, name=f"bench-api-{args.nodes}"
    )
    repository = RepositoryGenerator(profile).generate()
    schemas = distinct_schemas()
    print(f"repository: {repository.tree_count} trees, {repository.node_count} nodes")

    overhead = bench_envelope_overhead(repository, schemas, args)
    print(
        f"envelope overhead: legacy {overhead['legacy_seconds']}s, typed {overhead['typed_seconds']}s "
        f"({overhead['overhead_fraction']:+.2%}), identical={overhead['identical']}"
    )
    batch = bench_batch_speedup(repository, schemas, args)
    print(
        f"unsharded batch: loop {batch['loop_seconds']}s, match_many {batch['batch_seconds']}s "
        f"({batch['speedup']}x over {batch['queries']} queries / {batch['distinct']} distinct), "
        f"identical={batch['identical']}"
    )
    server = bench_server_throughput(repository, schemas, args)
    print(
        f"asyncio server: {server['requests']} requests over {server['clients']} clients "
        f"in {server['seconds']}s ({server['requests_per_second']} req/s, report-only)"
    )

    failures = []
    if not overhead["identical"]:
        failures.append("typed-path results differ from the legacy path")
    if not batch["identical"]:
        failures.append("match_many results differ from the per-query loop")
    if overhead["overhead_fraction"] > args.max_envelope_overhead:
        failures.append(
            f"envelope overhead {overhead['overhead_fraction']:.2%} exceeds "
            f"{args.max_envelope_overhead:.2%}"
        )
    if batch["speedup"] < args.min_batch_speedup:
        failures.append(
            f"batch speedup {batch['speedup']}x below the {args.min_batch_speedup}x floor"
        )

    payload = {
        "benchmark": "api_server",
        "config": {
            "nodes": repository.node_count,
            "trees": repository.tree_count,
            "threshold": args.threshold,
            "delta": args.delta,
            "top_k": args.top_k,
            "rounds": args.rounds,
            "batch_repeat": args.batch_repeat,
            "seed": args.seed,
        },
        "envelope_overhead": overhead,
        "batch": batch,
        "server": server,
        "gates": {
            "max_envelope_overhead": args.max_envelope_overhead,
            "min_batch_speedup": args.min_batch_speedup,
            "failures": failures,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Service benchmark: cold rebuild vs snapshot load vs cached queries.

Measures the three start-up/serving regimes of :class:`repro.service.MatchingService`
over one generated repository:

``cold_load_seconds``
    Load the repository JSON and build every piece of derived state from
    scratch (name/trigram index, per-tree distance oracles, repository
    partition with the paper's *join & remove* reclustering) — what every
    process paid before the service layer existed.

``snapshot_load_seconds``
    Load the same state from a service snapshot in one file read.

``cold/warm/cached query latency``
    First query after start-up, a different schema (shares the warm derived
    state but misses the query cache), and an exact repeat served from the
    fingerprint-keyed LRU element-match-table cache.

Correctness gates: the snapshot-loaded service must produce mappings
*bit-identical* to the cold-built one, and the snapshot load must beat the
cold rebuild by ``--min-load-speedup`` (3x by default — the acceptance floor;
CI uses a lower floor to absorb shared-runner noise).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_service_query.py
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.clustering.reclustering import join_and_remove
from repro.schema.serialization import load_repository, save_repository
from repro.service import MatchingService, load_snapshot, write_snapshot
from repro.workload.generator import RepositoryGenerator, RepositoryProfile
from repro.workload.personal import (
    book_personal_schema,
    contact_personal_schema,
    paper_personal_schema,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service_query.json"


def build_cold(repository_path: Path, threshold: float) -> tuple[float, MatchingService]:
    started = time.perf_counter()
    repository = load_repository(repository_path)
    # The service partition applies the paper's join & remove reclustering to
    # the offline fragments — the "clustering result" the snapshot persists.
    service = MatchingService(
        repository, element_threshold=threshold, partition_reclustering=join_and_remove()
    )
    service.build_derived_state()
    return time.perf_counter() - started, service


def load_warm(snapshot_path: Path) -> tuple[float, MatchingService]:
    started = time.perf_counter()
    service = load_snapshot(snapshot_path, partition_reclustering=join_and_remove())
    return time.perf_counter() - started, service


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=8_000, help="target repository node count")
    parser.add_argument("--min-tree-size", type=int, default=20)
    parser.add_argument("--max-tree-size", type=int, default=220)
    parser.add_argument("--threshold", type=float, default=0.55, help="element similarity threshold")
    parser.add_argument("--rounds", type=int, default=3, help="timing rounds (best-of)")
    parser.add_argument(
        "--min-load-speedup",
        type=float,
        default=3.0,
        help="fail when snapshot load is not this many times faster than a cold rebuild (0 disables)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--workdir", type=Path, default=None, help="scratch dir for repo/snapshot files (default: temp dir)"
    )
    args = parser.parse_args(argv)

    with contextlib.ExitStack() as stack:
        if args.workdir is None:
            workdir = Path(stack.enter_context(tempfile.TemporaryDirectory(prefix="bench_service_")))
        else:
            workdir = args.workdir
            workdir.mkdir(parents=True, exist_ok=True)
        return _run(args, workdir)


def _run(args, workdir: Path) -> int:
    repository_path = workdir / "bench_service_repository.json"
    snapshot_path = workdir / "bench_service_snapshot.json"

    profile = RepositoryProfile(
        target_node_count=args.nodes,
        min_tree_size=args.min_tree_size,
        max_tree_size=args.max_tree_size,
        name="bench-service",
    )
    repository = RepositoryGenerator(profile).generate()
    save_repository(repository, repository_path)

    # One cold build produces both the snapshot every warm round loads and the
    # reference service for the output-identity gate.
    _, cold_service = build_cold(repository_path, args.threshold)
    write_snapshot(cold_service, snapshot_path, build=False)

    cold_seconds = min(
        build_cold(repository_path, args.threshold)[0] for _ in range(args.rounds)
    )
    snapshot_seconds = min(load_warm(snapshot_path)[0] for _ in range(args.rounds))
    _, warm_service = load_warm(snapshot_path)

    schema = paper_personal_schema()
    started = time.perf_counter()
    cold_result = warm_service.match(schema)
    cold_query_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm_service.match(contact_personal_schema())
    warm_service.match(book_personal_schema())
    warm_query_seconds = (time.perf_counter() - started) / 2

    started = time.perf_counter()
    cached_result = warm_service.match(schema)
    cached_query_seconds = time.perf_counter() - started

    reference_result = cold_service.match(schema)
    identical = (
        reference_result.ranking_key() == cold_result.ranking_key() == cached_result.ranking_key()
    )
    load_speedup = cold_seconds / snapshot_seconds if snapshot_seconds > 0 else float("inf")
    cache_speedup = (
        cold_query_seconds / cached_query_seconds if cached_query_seconds > 0 else float("inf")
    )

    report = {
        "benchmark": "service_query",
        "repository": {
            "trees": repository.tree_count,
            "nodes": repository.node_count,
            "snapshot_bytes": snapshot_path.stat().st_size,
        },
        "threshold": args.threshold,
        "rounds": args.rounds,
        "cold_load_seconds": round(cold_seconds, 6),
        "snapshot_load_seconds": round(snapshot_seconds, 6),
        "load_speedup": round(load_speedup, 3),
        "cold_query_seconds": round(cold_query_seconds, 6),
        "warm_query_seconds": round(warm_query_seconds, 6),
        "cached_query_seconds": round(cached_query_seconds, 6),
        "cached_query_speedup": round(cache_speedup, 3),
        "outputs_identical": identical,
        "service_counters": warm_service.counters.as_dict(),
    }
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))

    if not identical:
        print("FAIL: snapshot-loaded and cold-built services disagree", file=sys.stderr)
        return 1
    if args.min_load_speedup > 0 and load_speedup < args.min_load_speedup:
        print(
            f"FAIL: snapshot load speedup {load_speedup:.2f}x below required "
            f"{args.min_load_speedup}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: snapshot load {load_speedup:.1f}x faster than cold rebuild, "
        f"cached query {cache_speedup:.1f}x faster than cold query, outputs identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
